package lp

// Parser for the DLV-style syntax used throughout the paper (Appendix B.4):
//
//	poss(z1,v).
//	poss(x,X) :- poss(z2,X).
//	conf(x,z1,X) :- poss(z1,X), poss(x,Y), Y!=X.
//	poss(x,X) :- poss(z1,X), not conf(x,z1,X).
//
// Identifiers starting with a lower-case letter (or digit) are constants;
// upper-case identifiers are variables. Single-quoted strings are constants
// too ('ship hull'). '%' starts a line comment. A query "poss(X,U) ?" is
// parsed by ParseQuery.

import (
	"fmt"
	"strings"
	"unicode"
)

type token struct {
	kind string // ident, var, str, punct, eof
	text string
	pos  int
}

type lexer struct {
	src  string
	i    int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.i < len(l.src) {
		c := l.src[l.i]
		switch {
		case c == '%':
			for l.i < len(l.src) && l.src[l.i] != '\n' {
				l.i++
			}
		case unicode.IsSpace(rune(c)):
			l.i++
		case c == '\'':
			start := l.i + 1
			j := start
			for j < len(l.src) && l.src[j] != '\'' {
				j++
			}
			if j >= len(l.src) {
				return nil, fmt.Errorf("lp: unterminated quoted constant at offset %d", l.i)
			}
			l.toks = append(l.toks, token{"str", l.src[start:j], l.i})
			l.i = j + 1
		case c == ':' && l.i+1 < len(l.src) && l.src[l.i+1] == '-':
			l.toks = append(l.toks, token{"punct", ":-", l.i})
			l.i += 2
		case c == '!' && l.i+1 < len(l.src) && l.src[l.i+1] == '=':
			l.toks = append(l.toks, token{"punct", "!=", l.i})
			l.i += 2
		case strings.ContainsRune("(),.?=", rune(c)):
			l.toks = append(l.toks, token{"punct", string(c), l.i})
			l.i++
		case isIdentRune(rune(c)):
			j := l.i
			for j < len(l.src) && isIdentRune(rune(l.src[j])) {
				j++
			}
			word := l.src[l.i:j]
			kind := "ident"
			if unicode.IsUpper(rune(word[0])) || word[0] == '_' {
				kind = "var"
			}
			l.toks = append(l.toks, token{kind, word, l.i})
			l.i = j
		default:
			return nil, fmt.Errorf("lp: unexpected character %q at offset %d", c, l.i)
		}
	}
	l.toks = append(l.toks, token{kind: "eof", pos: len(src)})
	return l.toks, nil
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) at(text string) bool {
	return p.toks[p.i].kind == "punct" && p.toks[p.i].text == text
}
func (p *parser) expect(text string) error {
	if !p.at(text) {
		return fmt.Errorf("lp: expected %q at offset %d, got %q", text, p.peek().pos, p.peek().text)
	}
	p.i++
	return nil
}

func (p *parser) parseTerm() (Term, error) {
	t := p.next()
	switch t.kind {
	case "ident", "str":
		return Const(t.text), nil
	case "var":
		return Var(t.text), nil
	}
	return Term{}, fmt.Errorf("lp: expected term at offset %d, got %q", t.pos, t.text)
}

func (p *parser) parseAtom() (Atom, error) {
	t := p.next()
	if t.kind != "ident" && t.kind != "str" {
		return Atom{}, fmt.Errorf("lp: expected predicate at offset %d, got %q", t.pos, t.text)
	}
	a := Atom{Pred: t.text}
	if !p.at("(") {
		return a, nil
	}
	p.i++
	for {
		term, err := p.parseTerm()
		if err != nil {
			return Atom{}, err
		}
		a.Args = append(a.Args, term)
		if p.at(",") {
			p.i++
			continue
		}
		break
	}
	if err := p.expect(")"); err != nil {
		return Atom{}, err
	}
	return a, nil
}

// parseBodyItem parses a literal or builtin.
func (p *parser) parseBodyItem(r *Rule) error {
	// Negation.
	if t := p.peek(); t.kind == "ident" && t.text == "not" {
		p.i++
		a, err := p.parseAtom()
		if err != nil {
			return err
		}
		r.Body = append(r.Body, Literal{Atom: a, Neg: true})
		return nil
	}
	// Could be an atom or a builtin comparison "X != Y" / "X = Y".
	save := p.i
	left, err := p.parseTerm()
	if err == nil && (p.at("!=") || p.at("=")) {
		eq := p.next().text == "="
		right, err := p.parseTerm()
		if err != nil {
			return err
		}
		r.Builtins = append(r.Builtins, Builtin{L: left, R: right, Eq: eq})
		return nil
	}
	p.i = save
	a, err := p.parseAtom()
	if err != nil {
		return err
	}
	r.Body = append(r.Body, Literal{Atom: a})
	return nil
}

// Parse parses a program in DLV syntax.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for p.peek().kind != "eof" {
		head, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		r := Rule{Head: head}
		if p.at(":-") {
			p.i++
			for {
				if err := p.parseBodyItem(&r); err != nil {
					return nil, err
				}
				if p.at(",") {
					p.i++
					continue
				}
				break
			}
		}
		if err := p.expect("."); err != nil {
			return nil, err
		}
		prog.Rules = append(prog.Rules, r)
	}
	return prog, nil
}

// ParseQuery parses a query of the form "poss(X,U) ?" and returns the atom.
func ParseQuery(src string) (Atom, error) {
	toks, err := lex(src)
	if err != nil {
		return Atom{}, err
	}
	p := &parser{toks: toks}
	a, err := p.parseAtom()
	if err != nil {
		return Atom{}, err
	}
	if err := p.expect("?"); err != nil {
		return Atom{}, err
	}
	if p.peek().kind != "eof" {
		return Atom{}, fmt.Errorf("lp: trailing input after query")
	}
	return a, nil
}

// MatchQuery returns the substitution-instances of query among the atom
// strings in atoms (each "pred(c1,c2)"). Variables match any constant;
// repeated variables must match equal constants.
func MatchQuery(query Atom, atoms []string) []string {
	var out []string
	for _, s := range atoms {
		if matchAtomString(query, s) {
			out = append(out, s)
		}
	}
	return out
}

func matchAtomString(q Atom, s string) bool {
	open := strings.IndexByte(s, '(')
	if open < 0 {
		return len(q.Args) == 0 && q.Pred == s
	}
	if s[:open] != q.Pred || !strings.HasSuffix(s, ")") {
		return false
	}
	args := strings.Split(s[open+1:len(s)-1], ",")
	if len(args) != len(q.Args) {
		return false
	}
	bind := make(map[string]string)
	for i, t := range q.Args {
		if !t.Var {
			if t.Name != args[i] {
				return false
			}
			continue
		}
		if prev, ok := bind[t.Name]; ok {
			if prev != args[i] {
				return false
			}
		} else {
			bind[t.Name] = args[i]
		}
	}
	return true
}
