// Package bulk implements bulk conflict resolution (Section 4 and
// Appendix B.10): resolving a large set of objects that share one trust
// network by translating the Resolution Algorithm into SQL executed against
// a relational POSS(X,K,V) table.
//
// The two assumptions of Section 4 make this possible:
//
//	(i)  the trust mappings are the same for every object, and
//	(ii) a user with an explicit belief for one object has explicit
//	     beliefs for all objects.
//
// Under them, Algorithm 1 visits nodes in the same order for every object,
// so the sequence of Step-1 copies and Step-2 floods (the *plan*) is
// computed once on the network structure and then applied to all objects
// at once with set-oriented INSERT ... SELECT statements.
package bulk

import (
	"fmt"
	"sort"
	"strings"

	"trustmap/internal/sqlmem"
	"trustmap/internal/tn"
)

// StepKind discriminates plan steps.
type StepKind int

const (
	// StepCopy is Step 1 of Algorithm 1: copy the preferred parent's
	// possible values to the child.
	StepCopy StepKind = iota
	// StepFlood is Step 2: flood a strongly connected component with the
	// union of its closed parents' possible values.
	StepFlood
)

// Step is one resolution step of the plan.
type Step struct {
	Kind    StepKind
	Target  int   // StepCopy: the node being closed
	Source  int   // StepCopy: its preferred parent
	Members []int // StepFlood: the component being closed
	Sources []int // StepFlood: closed nodes with edges into the component
}

// Plan is the object-independent resolution order for a network.
type Plan struct {
	Net   *tn.Network
	Roots []int // users with explicit beliefs
	Steps []Step
}

// NewPlan computes the resolution plan by running the control flow of
// Algorithm 1 once. The network must be binary; explicit beliefs mark which
// users are roots (their values are irrelevant to the plan).
func NewPlan(network *tn.Network) (*Plan, error) {
	if !network.IsBinary() {
		return nil, fmt.Errorf("bulk: network is not binary; apply tn.Binarize first")
	}
	nu := network.NumUsers()
	p := &Plan{Net: network}
	reach := network.ReachableFromRoots()
	closed := make([]bool, nu)
	nClosed := 0
	for x := 0; x < nu; x++ {
		if network.HasExplicit(x) {
			p.Roots = append(p.Roots, x)
			closed[x] = true
			nClosed++
		} else if !reach[x] {
			closed[x] = true
			nClosed++
		}
	}
	effPref := func(x int) (int, bool) {
		var in []tn.Mapping
		for _, m := range network.In(x) {
			if reach[m.Parent] {
				in = append(in, m)
			}
		}
		if len(in) == 0 {
			return -1, false
		}
		if len(in) > 1 && in[1].Priority == in[0].Priority {
			return -1, false
		}
		return in[0].Parent, true
	}
	g := network.Graph()
	for nClosed < nu {
		progressed := false
		for x := 0; x < nu; x++ {
			if closed[x] {
				continue
			}
			if z, ok := effPref(x); ok && closed[z] {
				p.Steps = append(p.Steps, Step{Kind: StepCopy, Target: x, Source: z})
				closed[x] = true
				nClosed++
				progressed = true
			}
		}
		if progressed || nClosed == nu {
			continue
		}
		open := func(v int) bool { return !closed[v] }
		comp, ncomp := g.SCC(open)
		if ncomp == 0 {
			break
		}
		// Close every minimal component of this Tarjan pass (see
		// resolve.Resolve for why this keeps many-cycle networks linear).
		hasIncoming := make([]bool, ncomp)
		memberList := make([][]int, ncomp)
		for v := 0; v < nu; v++ {
			if comp[v] < 0 {
				continue
			}
			memberList[comp[v]] = append(memberList[comp[v]], v)
			for _, m := range network.In(v) {
				if cp := comp[m.Parent]; cp >= 0 && cp != comp[v] {
					hasIncoming[comp[v]] = true
				}
			}
		}
		for c := 0; c < ncomp; c++ {
			if hasIncoming[c] {
				continue
			}
			members := memberList[c]
			srcSet := map[int]bool{}
			for _, x := range members {
				for _, m := range network.In(x) {
					if closed[m.Parent] && reach[m.Parent] {
						srcSet[m.Parent] = true
					}
				}
			}
			var sources []int
			for z := range srcSet {
				sources = append(sources, z)
			}
			sort.Ints(sources)
			p.Steps = append(p.Steps, Step{Kind: StepFlood, Members: members, Sources: sources})
			for _, x := range members {
				closed[x] = true
				nClosed++
			}
		}
	}
	return p, nil
}

// userConst is the SQL encoding of user IDs in the X column.
func userConst(x int) string { return fmt.Sprintf("u%d", x) }

// SQL renders the plan as the INSERT ... SELECT statements of Section 4
// against the given table (schema X, K, V).
func (p *Plan) SQL(tableName string) []string {
	var out []string
	for _, s := range p.Steps {
		switch s.Kind {
		case StepCopy:
			out = append(out, fmt.Sprintf(
				"INSERT INTO %s SELECT '%s' AS X, t.K, t.V FROM %s t WHERE t.X = '%s'",
				tableName, userConst(s.Target), tableName, userConst(s.Source)))
		case StepFlood:
			if len(s.Sources) == 0 {
				continue
			}
			var conds []string
			for _, z := range s.Sources {
				conds = append(conds, fmt.Sprintf("t.X = '%s'", userConst(z)))
			}
			where := strings.Join(conds, " OR ")
			for _, x := range s.Members {
				out = append(out, fmt.Sprintf(
					"INSERT INTO %s SELECT DISTINCT '%s' AS X, t.K, t.V FROM %s t WHERE %s",
					tableName, userConst(x), tableName, where))
			}
		}
	}
	return out
}

// Store couples a plan with a sqlmem database holding POSS(X,K,V).
type Store struct {
	Plan *Plan
	DB   *sqlmem.DB
	tbl  string
}

// NewStore creates the POSS table (with an index on X) for the plan.
func NewStore(p *Plan) *Store {
	db := sqlmem.New()
	db.MustExec("CREATE TABLE POSS (X VARCHAR, K VARCHAR, V VARCHAR)")
	db.MustExec("CREATE INDEX POSS_X ON POSS (X)")
	return &Store{Plan: p, DB: db, tbl: "POSS"}
}

// LoadObjects seeds the explicit beliefs: beliefs[k][x] must assign a value
// to every root user x of the plan, for every object key k (assumption ii).
func (s *Store) LoadObjects(beliefs map[string]map[int]tn.Value) error {
	var rows []string
	keys := make([]string, 0, len(beliefs))
	for k := range beliefs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		bs := beliefs[k]
		for _, x := range s.Plan.Roots {
			v, ok := bs[x]
			if !ok {
				return fmt.Errorf("bulk: object %q misses a belief for root user %s (assumption ii)", k, s.Plan.Net.Name(x))
			}
			rows = append(rows, fmt.Sprintf("('%s','%s','%s')", userConst(x), sqlEscape(k), sqlEscape(string(v))))
			if len(rows) >= 500 {
				s.DB.MustExec("INSERT INTO POSS VALUES " + strings.Join(rows, ", "))
				rows = rows[:0]
			}
		}
	}
	if len(rows) > 0 {
		s.DB.MustExec("INSERT INTO POSS VALUES " + strings.Join(rows, ", "))
	}
	return nil
}

// Resolve executes the plan's SQL against the store.
func (s *Store) Resolve() error {
	for _, stmt := range s.Plan.SQL(s.tbl) {
		if _, err := s.DB.Exec(stmt); err != nil {
			return err
		}
	}
	return nil
}

// Possible returns poss(x, k): the values user x can believe for object k.
func (s *Store) Possible(x int, k string) []tn.Value {
	res := s.DB.MustExec(fmt.Sprintf(
		"SELECT DISTINCT V FROM POSS WHERE X = '%s' AND K = '%s' ORDER BY V",
		userConst(x), sqlEscape(k)))
	out := make([]tn.Value, 0, len(res.Rows))
	for _, r := range res.Rows {
		out = append(out, tn.Value(r[0]))
	}
	return out
}

// Certain returns cert(x, k): the single possible value, or NoValue.
func (s *Store) Certain(x int, k string) tn.Value {
	poss := s.Possible(x, k)
	if len(poss) == 1 {
		return poss[0]
	}
	return tn.NoValue
}

func sqlEscape(s string) string { return strings.ReplaceAll(s, "'", "''") }
