// Package bulk implements bulk conflict resolution (Section 4 and
// Appendix B.10): resolving a large set of objects that share one trust
// network by translating the Resolution Algorithm into SQL executed against
// a relational POSS(X,K,V) table.
//
// The two assumptions of Section 4 make this possible:
//
//	(i)  the trust mappings are the same for every object, and
//	(ii) a user with an explicit belief for one object has explicit
//	     beliefs for all objects.
//
// Under them, Algorithm 1 visits nodes in the same order for every object,
// so the sequence of Step-1 copies and Step-2 floods (the *plan*) is
// computed once on the network structure and then applied to all objects
// at once with set-oriented INSERT ... SELECT statements.
package bulk

import (
	"fmt"
	"sort"
	"strings"

	"trustmap/internal/engine"
	"trustmap/internal/sqlmem"
	"trustmap/internal/tn"
)

// The plan itself is compiled by package engine; this package only lowers
// it to SQL, so the step types are aliases, not copies.
type (
	// StepKind discriminates plan steps.
	StepKind = engine.StepKind
	// Step is one resolution step of the plan. Its Members/Sources slices
	// are shared with the compiled engine plan; do not modify.
	Step = engine.Step
)

const (
	// StepCopy is Step 1 of Algorithm 1: copy the preferred parent's
	// possible values to the child.
	StepCopy = engine.StepCopy
	// StepFlood is Step 2: flood a strongly connected component with the
	// union of its closed parents' possible values.
	StepFlood = engine.StepFlood
)

// Plan is the object-independent resolution order for a network, obtained
// from the compiled engine plan.
type Plan struct {
	Net   *tn.Network
	Roots []int // users with explicit beliefs
	Steps []Step
}

// NewPlan compiles the resolution plan once via engine.Compile. The
// network must be binary; explicit beliefs mark which users are roots
// (their values are irrelevant to the plan).
func NewPlan(network *tn.Network) (*Plan, error) {
	c, err := engine.Compile(network)
	if err != nil {
		return nil, fmt.Errorf("bulk: %w", err)
	}
	return NewPlanFrom(c), nil
}

// NewPlanFrom lowers an already-compiled engine artifact to a SQL plan
// without recompiling: callers holding a CompiledNetwork (a Session, a
// parity harness) get the relational trace of the same plan for free.
func NewPlanFrom(c *engine.CompiledNetwork) *Plan {
	return &Plan{
		Net:   c.Net(),
		Roots: append([]int(nil), c.Roots()...),
		Steps: c.Steps(),
	}
}

// userConst is the SQL encoding of user IDs in the X column.
func userConst(x int) string { return fmt.Sprintf("u%d", x) }

// SQL renders the plan as the INSERT ... SELECT statements of Section 4
// against the given table (schema X, K, V).
func (p *Plan) SQL(tableName string) []string {
	var out []string
	for _, s := range p.Steps {
		switch s.Kind {
		case StepCopy:
			out = append(out, fmt.Sprintf(
				"INSERT INTO %s SELECT '%s' AS X, t.K, t.V FROM %s t WHERE t.X = '%s'",
				tableName, userConst(s.Target), tableName, userConst(s.Source)))
		case StepFlood:
			if len(s.Sources) == 0 {
				continue
			}
			var conds []string
			for _, z := range s.Sources {
				conds = append(conds, fmt.Sprintf("t.X = '%s'", userConst(z)))
			}
			where := strings.Join(conds, " OR ")
			for _, x := range s.Members {
				out = append(out, fmt.Sprintf(
					"INSERT INTO %s SELECT DISTINCT '%s' AS X, t.K, t.V FROM %s t WHERE %s",
					tableName, userConst(x), tableName, where))
			}
		}
	}
	return out
}

// Store couples a plan with a sqlmem database holding POSS(X,K,V).
type Store struct {
	Plan *Plan
	DB   *sqlmem.DB
	tbl  string
}

// NewStore creates the POSS table (with an index on X) for the plan.
func NewStore(p *Plan) *Store {
	db := sqlmem.New()
	db.MustExec("CREATE TABLE POSS (X VARCHAR, K VARCHAR, V VARCHAR)")
	db.MustExec("CREATE INDEX POSS_X ON POSS (X)")
	return &Store{Plan: p, DB: db, tbl: "POSS"}
}

// LoadObjects seeds the explicit beliefs: beliefs[k][x] must assign a value
// to every root user x of the plan, for every object key k (assumption ii).
func (s *Store) LoadObjects(beliefs map[string]map[int]tn.Value) error {
	var rows []string
	keys := make([]string, 0, len(beliefs))
	for k := range beliefs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		bs := beliefs[k]
		for _, x := range s.Plan.Roots {
			v, ok := bs[x]
			if !ok {
				return fmt.Errorf("bulk: object %q misses a belief for root user %s (assumption ii)", k, s.Plan.Net.Name(x))
			}
			rows = append(rows, fmt.Sprintf("('%s','%s','%s')", userConst(x), sqlEscape(k), sqlEscape(string(v))))
			if len(rows) >= 500 {
				s.DB.MustExec("INSERT INTO POSS VALUES " + strings.Join(rows, ", "))
				rows = rows[:0]
			}
		}
	}
	if len(rows) > 0 {
		s.DB.MustExec("INSERT INTO POSS VALUES " + strings.Join(rows, ", "))
	}
	return nil
}

// Resolve executes the plan's SQL against the store.
func (s *Store) Resolve() error {
	for _, stmt := range s.Plan.SQL(s.tbl) {
		if _, err := s.DB.Exec(stmt); err != nil {
			return err
		}
	}
	return nil
}

// Possible returns poss(x, k): the values user x can believe for object k.
func (s *Store) Possible(x int, k string) []tn.Value {
	res := s.DB.MustExec(fmt.Sprintf(
		"SELECT DISTINCT V FROM POSS WHERE X = '%s' AND K = '%s' ORDER BY V",
		userConst(x), sqlEscape(k)))
	out := make([]tn.Value, 0, len(res.Rows))
	for _, r := range res.Rows {
		out = append(out, tn.Value(r[0]))
	}
	return out
}

// Certain returns cert(x, k): the single possible value, or NoValue.
func (s *Store) Certain(x int, k string) tn.Value {
	poss := s.Possible(x, k)
	if len(poss) == 1 {
		return poss[0]
	}
	return tn.NoValue
}

func sqlEscape(s string) string { return strings.ReplaceAll(s, "'", "''") }
