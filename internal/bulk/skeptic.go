package bulk

// Bulk resolution with constraints (the Section 4 extension the paper
// sketches for Algorithm 2: "we need to modify some of the insert
// statements to insert the appropriate representation of ⊥"). This file
// provides a direct (non-SQL) bulk Skeptic resolver: the object-independent
// parts of Algorithm 2 — the static Type-1/Type-2 partition, the negative
// closures, and the resolution order — are computed once per network shape
// and reused across all objects, under the two Section-4 assumptions
// (shared mappings; positive-belief users have beliefs for every object).
// Constraints (negative beliefs) are per-user and shared by all objects,
// matching the paper's model of constraints as value filters.

import (
	"fmt"
	"sort"

	"trustmap/internal/belief"
	"trustmap/internal/skeptic"
	"trustmap/internal/tn"
)

// SkepticPlan is the reusable, object-independent state for bulk Skeptic
// resolution.
type SkepticPlan struct {
	shape *skeptic.Network
	roots []int // users whose positive belief varies per object
}

// NewSkepticPlan prepares bulk Skeptic resolution for a network shape:
// roots lists the users with per-object positive beliefs; constraints maps
// users to their (object-independent) rejected values. The network must be
// binary and tie-free (Section 3).
func NewSkepticPlan(network *tn.Network, roots []int, constraints map[int][]string) (*SkepticPlan, error) {
	shape := skeptic.FromTN(network.Clone())
	for user, rejected := range constraints {
		if network.HasExplicit(user) {
			return nil, fmt.Errorf("bulk: user %s has both beliefs and constraints", network.Name(user))
		}
		shape.SetBelief(user, belief.Negatives(rejected...))
	}
	for _, r := range roots {
		// Placeholder positive: the Type partition depends only on WHICH
		// users hold positives, not on their values (assumption ii).
		shape.SetBelief(r, belief.Positive("seed"))
	}
	if err := shape.Validate(); err != nil {
		return nil, err
	}
	rs := append([]int(nil), roots...)
	sort.Ints(rs)
	return &SkepticPlan{shape: shape, roots: rs}, nil
}

// SkepticResult holds per-object Skeptic resolutions.
type SkepticResult struct {
	plan    *SkepticPlan
	results map[string]*skeptic.Result
}

// ResolveObjects resolves every object: beliefs[k][x] gives root x's
// positive value for object k and must cover every plan root.
func (p *SkepticPlan) ResolveObjects(beliefs map[string]map[int]tn.Value) (*SkepticResult, error) {
	out := &SkepticResult{plan: p, results: make(map[string]*skeptic.Result, len(beliefs))}
	keys := make([]string, 0, len(beliefs))
	for k := range beliefs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		bs := beliefs[k]
		per := p.shape
		// Swap in the object's values; the structure, constraints, and
		// derived partition inputs are shared.
		for _, r := range p.roots {
			v, ok := bs[r]
			if !ok {
				return nil, fmt.Errorf("bulk: object %q misses a belief for root %d (assumption ii)", k, r)
			}
			per.SetBelief(r, belief.Positive(string(v)))
		}
		out.results[k] = skeptic.ResolveSkeptic(per)
	}
	// Restore placeholders so the plan stays reusable.
	for _, r := range p.roots {
		p.shape.SetBelief(r, belief.Positive("seed"))
	}
	return out, nil
}

// PossiblePositives returns the possible positive values of user x for
// object k.
func (r *SkepticResult) PossiblePositives(x int, k string) []string {
	res := r.results[k]
	if res == nil {
		return nil
	}
	return res.PossiblePositives(x)
}

// CertainPositive returns the certain positive value of user x for object
// k, or "".
func (r *SkepticResult) CertainPositive(x int, k string) string {
	res := r.results[k]
	if res == nil {
		return ""
	}
	return res.CertainPositive(x)
}

// HasBottom reports whether user x can reject every value for object k.
func (r *SkepticResult) HasBottom(x int, k string) bool {
	res := r.results[k]
	return res != nil && res.HasBottom(x)
}
