package bulk

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"trustmap/internal/engine"
	"trustmap/internal/resolve"
	"trustmap/internal/tn"
)

// buildOscillator returns the Figure 4b network (binary, two roots).
func buildOscillator() *tn.Network {
	n := tn.New()
	x1 := n.AddUser("x1")
	x2 := n.AddUser("x2")
	x3 := n.AddUser("x3")
	x4 := n.AddUser("x4")
	n.AddMapping(x2, x1, 100)
	n.AddMapping(x3, x1, 50)
	n.AddMapping(x1, x2, 80)
	n.AddMapping(x4, x2, 40)
	n.SetExplicit(x3, "seed")
	n.SetExplicit(x4, "seed")
	return n
}

func TestPlanShape(t *testing.T) {
	n := buildOscillator()
	p, err := NewPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Roots) != 2 {
		t.Fatalf("roots=%v want 2", p.Roots)
	}
	// The oscillator resolves with a single flood of {x1,x2}.
	if len(p.Steps) != 1 || p.Steps[0].Kind != StepFlood {
		t.Fatalf("steps=%v want one flood", p.Steps)
	}
	if len(p.Steps[0].Members) != 2 || len(p.Steps[0].Sources) != 2 {
		t.Errorf("flood shape wrong: %+v", p.Steps[0])
	}
}

func TestPlanFromCompiledArtifact(t *testing.T) {
	n := buildOscillator()
	c, err := engine.Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := NewPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	from := NewPlanFrom(c)
	a, b := direct.SQL("POSS"), from.SQL("POSS")
	if len(a) != len(b) {
		t.Fatalf("SQL lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("statement %d differs:\n%s\n%s", i, a[i], b[i])
		}
	}
}

func TestPlanRejectsNonBinary(t *testing.T) {
	n := tn.New()
	x := n.AddUser("x")
	for i := 0; i < 3; i++ {
		z := n.AddUser(fmt.Sprintf("z%d", i))
		n.AddMapping(z, x, i+1)
	}
	if _, err := NewPlan(n); err == nil {
		t.Error("non-binary network must be rejected")
	}
}

func TestSQLShapeMatchesPaper(t *testing.T) {
	n := buildOscillator()
	p, err := NewPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	stmts := p.SQL("POSS")
	if len(stmts) != 2 { // one DISTINCT insert per flooded member
		t.Fatalf("want 2 statements, got %d: %v", len(stmts), stmts)
	}
	for _, s := range stmts {
		if !strings.Contains(s, "SELECT DISTINCT") || !strings.Contains(s, " OR ") {
			t.Errorf("flood statement shape wrong: %s", s)
		}
	}
}

func TestBulkMatchesPerObjectResolve(t *testing.T) {
	n := buildOscillator()
	p, err := NewPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(p)
	x3, x4 := n.UserID("x3"), n.UserID("x4")
	beliefs := map[string]map[int]tn.Value{
		"k1": {x3: "jar", x4: "cow"}, // conflict
		"k2": {x3: "urn", x4: "urn"}, // agreement
		"k3": {x3: "a", x4: "b"},     // conflict
	}
	if err := s.LoadObjects(beliefs); err != nil {
		t.Fatal(err)
	}
	if err := s.Resolve(); err != nil {
		t.Fatal(err)
	}
	for k, bs := range beliefs {
		per := n.Clone()
		for x, v := range bs {
			per.SetExplicit(x, v)
		}
		r := resolve.Resolve(per)
		for x := 0; x < n.NumUsers(); x++ {
			want := r.Possible(x)
			got := s.Possible(x, k)
			if len(got) != len(want) {
				t.Fatalf("object %s poss(%s): bulk %v vs per-object %v", k, n.Name(x), got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("object %s poss(%s): bulk %v vs per-object %v", k, n.Name(x), got, want)
				}
			}
			if s.Certain(x, k) != r.Certain(x) {
				t.Fatalf("object %s cert(%s): bulk %q vs per-object %q", k, n.Name(x), s.Certain(x, k), r.Certain(x))
			}
		}
	}
}

// randomRootedBTN builds a random binary network with all explicit-belief
// users fixed (values set later per object).
func randomRootedBTN(rng *rand.Rand, maxUsers int) *tn.Network {
	n := tn.New()
	nu := 3 + rng.Intn(maxUsers-2)
	for i := 0; i < nu; i++ {
		n.AddUser(fmt.Sprintf("u%c", 'A'+i))
	}
	nRoots := 1 + rng.Intn(2)
	for i := 0; i < nRoots; i++ {
		n.SetExplicit(i, "seed")
	}
	for x := nRoots; x < nu; x++ {
		k := 1 + rng.Intn(2)
		perm := rng.Perm(nu)
		added := 0
		for _, z := range perm {
			if added >= k || z == x {
				continue
			}
			n.AddMapping(z, x, 1+rng.Intn(5))
			added++
		}
	}
	return n
}

// TestBulkMatchesPerObjectRandom cross-checks bulk SQL resolution against
// Algorithm 1 on random networks and random object sets.
func TestBulkMatchesPerObjectRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	values := []tn.Value{"v", "w", "u"}
	for iter := 0; iter < 40; iter++ {
		n := randomRootedBTN(rng, 7)
		p, err := NewPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		s := NewStore(p)
		beliefs := map[string]map[int]tn.Value{}
		numObjects := 1 + rng.Intn(6)
		for o := 0; o < numObjects; o++ {
			k := fmt.Sprintf("k%d", o)
			bs := map[int]tn.Value{}
			for _, root := range p.Roots {
				bs[root] = values[rng.Intn(len(values))]
			}
			beliefs[k] = bs
		}
		if err := s.LoadObjects(beliefs); err != nil {
			t.Fatal(err)
		}
		if err := s.Resolve(); err != nil {
			t.Fatal(err)
		}
		for k, bs := range beliefs {
			per := n.Clone()
			for x, v := range bs {
				per.SetExplicit(x, v)
			}
			r := resolve.Resolve(per)
			for x := 0; x < n.NumUsers(); x++ {
				want := r.Possible(x)
				got := s.Possible(x, k)
				if len(got) != len(want) {
					t.Fatalf("iter %d object %s poss(%s): bulk %v vs %v", iter, k, n.Name(x), got, want)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("iter %d object %s poss(%s): bulk %v vs %v", iter, k, n.Name(x), got, want)
					}
				}
			}
		}
	}
}

func TestLoadObjectsMissingRootBelief(t *testing.T) {
	n := buildOscillator()
	p, _ := NewPlan(n)
	s := NewStore(p)
	err := s.LoadObjects(map[string]map[int]tn.Value{
		"k1": {n.UserID("x3"): "jar"}, // x4 missing: violates assumption ii
	})
	if err == nil {
		t.Error("missing root belief must be rejected")
	}
}

func TestSQLEscaping(t *testing.T) {
	n := buildOscillator()
	p, _ := NewPlan(n)
	s := NewStore(p)
	x3, x4 := n.UserID("x3"), n.UserID("x4")
	err := s.LoadObjects(map[string]map[int]tn.Value{
		"key'quote": {x3: "it's", x4: "ship hull"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Resolve(); err != nil {
		t.Fatal(err)
	}
	got := s.Possible(n.UserID("x1"), "key'quote")
	if len(got) != 2 {
		t.Errorf("quoted keys/values mishandled: %v", got)
	}
}
