package bulk

import (
	"fmt"
	"math/rand"
	"testing"

	"trustmap/internal/belief"
	"trustmap/internal/skeptic"
	"trustmap/internal/tn"
)

// buildFilteredOscillator: an oscillator whose x1 carries a constraint.
func buildFilteredOscillator() (*tn.Network, []int, map[int][]string) {
	n := tn.New()
	x1 := n.AddUser("x1")
	x2 := n.AddUser("x2")
	x3 := n.AddUser("x3")
	x4 := n.AddUser("x4")
	n.AddMapping(x2, x1, 100)
	n.AddMapping(x3, x1, 50)
	n.AddMapping(x1, x2, 80)
	n.AddMapping(x4, x2, 40)
	return n, []int{x3, x4}, map[int][]string{x1: {"w"}}
}

func TestSkepticPlanMatchesPerObject(t *testing.T) {
	n, roots, constraints := buildFilteredOscillator()
	plan, err := NewSkepticPlan(n, roots, constraints)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	values := []tn.Value{"v", "w", "u"}
	beliefs := map[string]map[int]tn.Value{}
	for o := 0; o < 12; o++ {
		bs := map[int]tn.Value{}
		for _, r := range roots {
			bs[r] = values[rng.Intn(len(values))]
		}
		beliefs[fmt.Sprintf("k%d", o)] = bs
	}
	res, err := plan.ResolveObjects(beliefs)
	if err != nil {
		t.Fatal(err)
	}
	for k, bs := range beliefs {
		per := skeptic.FromTN(n.Clone())
		for user, rejected := range constraints {
			per.SetBelief(user, belief.Negatives(rejected...))
		}
		for r, v := range bs {
			per.SetBelief(r, belief.Positive(string(v)))
		}
		want := skeptic.ResolveSkeptic(per)
		for x := 0; x < n.NumUsers(); x++ {
			gotP := res.PossiblePositives(x, k)
			wantP := want.PossiblePositives(x)
			if len(gotP) != len(wantP) {
				t.Fatalf("object %s poss+(%s): bulk %v vs per-object %v", k, n.Name(x), gotP, wantP)
			}
			for i := range gotP {
				if gotP[i] != wantP[i] {
					t.Fatalf("object %s poss+(%s): bulk %v vs per-object %v", k, n.Name(x), gotP, wantP)
				}
			}
			if res.CertainPositive(x, k) != want.CertainPositive(x) {
				t.Fatalf("object %s cert+(%s) differs", k, n.Name(x))
			}
			if res.HasBottom(x, k) != want.HasBottom(x) {
				t.Fatalf("object %s bottom(%s) differs", k, n.Name(x))
			}
		}
	}
}

func TestSkepticPlanReusable(t *testing.T) {
	n, roots, constraints := buildFilteredOscillator()
	plan, err := NewSkepticPlan(n, roots, constraints)
	if err != nil {
		t.Fatal(err)
	}
	b1 := map[string]map[int]tn.Value{"k": {roots[0]: "v", roots[1]: "v"}}
	b2 := map[string]map[int]tn.Value{"k": {roots[0]: "u", roots[1]: "u"}}
	r1, err := plan.ResolveObjects(b1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := plan.ResolveObjects(b2)
	if err != nil {
		t.Fatal(err)
	}
	x1 := n.UserID("x1")
	if got := r1.CertainPositive(x1, "k"); got != "v" {
		t.Errorf("first batch: x1=%q want v", got)
	}
	if got := r2.CertainPositive(x1, "k"); got != "u" {
		t.Errorf("second batch: x1=%q want u (plan must be reusable)", got)
	}
}

func TestSkepticPlanErrors(t *testing.T) {
	n, roots, _ := buildFilteredOscillator()
	// Beliefs and constraints on the same user.
	n2 := n.Clone()
	n2.SetExplicit(roots[0], "v")
	if _, err := NewSkepticPlan(n2, roots, map[int][]string{roots[0]: {"w"}}); err == nil {
		t.Error("belief+constraint user must be rejected")
	}
	// Missing root belief for an object.
	plan, err := NewSkepticPlan(n, roots, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = plan.ResolveObjects(map[string]map[int]tn.Value{"k": {roots[0]: "v"}})
	if err == nil {
		t.Error("missing root belief must be rejected (assumption ii)")
	}
	// Ties are rejected.
	n3 := tn.New()
	a := n3.AddUser("a")
	b := n3.AddUser("b")
	x := n3.AddUser("x")
	n3.AddMapping(a, x, 1)
	n3.AddMapping(b, x, 1)
	if _, err := NewSkepticPlan(n3, []int{a, b}, nil); err == nil {
		t.Error("tied priorities must be rejected")
	}
}
