package shard

// The Router: N in-process trustmap.Store shards behind one Backend.
//
// Locking protocol. mu is a readers-writer lock over the SPINE, not the
// data: spine broadcasts (Mutate batches, the root registration riding
// object writes is deliberately NOT here — see below) take the write
// lock so every shard applies them in the same order, while object
// mutations and all reads take the read lock and run concurrently —
// each shard's own writer mutex serializes its WAL, so N shards append
// and fsync in parallel. Root registration (AddRoots) is commutative
// set-union, so it broadcasts under the read lock: two concurrent
// object writes may register roots in different orders on different
// shards, and the shards still converge to the identical root set.
//
// Divergence handling. Spine broadcasts must leave every shard in the
// same state: Store.Update applies ops one by one and stops at the
// first failure deterministically, so identical spines yield identical
// (applied, error) outcomes on every shard. If outcomes ever disagree —
// a WAL write failed on one shard, or state drifted — the Router
// poisons itself: further mutations answer an error wrapping
// trustmap.ErrPoisoned (reads keep serving, mirroring the single
// store's poison semantics).

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"sort"
	"sync"
	"sync/atomic"

	"trustmap"
	"trustmap/internal/engine"
	"trustmap/internal/query"
	"trustmap/wire"
)

// Router partitions objects across shards and broadcasts the spine.
// Build with NewRouter; it implements Backend.
type Router struct {
	shards []*trustmap.Store

	// mu: write-locked for spine broadcasts (lockstep order across
	// shards), read-locked for object ops and scatter reads.
	mu sync.RWMutex

	// poisonMu guards poisonErr: the first detected cross-shard
	// divergence, fatal for all later mutations.
	poisonMu  sync.Mutex
	poisonErr error

	// Deterministic op counters (wire.ClusterStats): conservation
	// invariant routedOps == sum(objectOps).
	spineOps     atomic.Uint64
	routedOps    atomic.Uint64
	scatterReads atomic.Uint64
	objectOps    []atomic.Uint64 // per shard
}

// NewRouter builds the router over shards (at least one). The caller
// hands over ownership: Close closes every shard.
func NewRouter(shards []*trustmap.Store) (*Router, error) {
	if len(shards) == 0 {
		return nil, errors.New("shard: NewRouter needs at least one shard")
	}
	for i, st := range shards {
		if st == nil {
			return nil, fmt.Errorf("shard: shard %d is nil", i)
		}
	}
	return &Router{
		shards:    shards,
		objectOps: make([]atomic.Uint64, len(shards)),
	}, nil
}

// Owner reports which shard owns key: wire.ShardOwner over this
// router's shard count.
func (r *Router) Owner(key string) int { return wire.ShardOwner(key, len(r.shards)) }

// Shard returns shard i's store — test and harness access to per-shard
// truth; production paths go through the Backend surface.
func (r *Router) Shard(i int) *trustmap.Store { return r.shards[i] }

// Shards reports the routing-table size.
func (r *Router) Shards() int { return len(r.shards) }

// failed reports the poison error, if any mutation may no longer run.
func (r *Router) failed() error {
	r.poisonMu.Lock()
	defer r.poisonMu.Unlock()
	return r.poisonErr
}

// poison records the first cross-shard divergence; all later mutations
// answer it (wrapping trustmap.ErrPoisoned so httpd maps it to the same
// Retry-After 503 as a poisoned single store).
func (r *Router) poison(cause error) error {
	r.poisonMu.Lock()
	defer r.poisonMu.Unlock()
	if r.poisonErr == nil {
		r.poisonErr = fmt.Errorf("shard: cluster poisoned (%v): %w", cause, trustmap.ErrPoisoned)
	}
	return r.poisonErr
}

// --- spine ---------------------------------------------------------------

// Mutate broadcasts one trust-network batch to every shard in lockstep.
// Identical spines make the per-shard outcome deterministic, so all
// shards report the same (applied, error); any disagreement poisons the
// router. The broadcast counts once in ClusterStats.SpineOps.
func (r *Router) Mutate(ops []wire.Op) (applied int, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.failed(); err != nil {
		return 0, err
	}
	r.spineOps.Add(1)
	applied, err = mutateStore(r.shards[0], ops)
	for _, st := range r.shards[1:] {
		a, e := mutateStore(st, ops)
		if a != applied || !sameError(e, err) {
			return 0, r.poison(fmt.Errorf("spine broadcast diverged: shard 0 (%d, %v) vs (%d, %v)", applied, err, a, e))
		}
	}
	return applied, err
}

// sameError reports whether two per-shard outcomes agree: both nil, or
// both failing with the same message (the deterministic dispatch makes
// genuine agreement produce identical strings).
func sameError(a, b error) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || a.Error() == b.Error()
}

// broadcastRoots registers users as roots on every shard except owner
// (whose own object write already registered them). Failure here means
// the root sets diverged: the router poisons itself.
func (r *Router) broadcastRoots(ctx context.Context, owner int, users []string) error {
	for i, st := range r.shards {
		if i == owner {
			continue
		}
		if err := st.AddRoots(ctx, users...); err != nil {
			return r.poison(fmt.Errorf("root broadcast to shard %d failed: %w", i, err))
		}
	}
	return nil
}

// --- object mutations ----------------------------------------------------

// PutObject routes the write to the owning shard, then broadcasts the
// mentioned users' root registration to every other shard: rootness is
// spine state (it changes what every object needs resolved), so the
// root set must stay identical across shards for oracle parity.
func (r *Router) PutObject(ctx context.Context, key string, beliefs map[string]string) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if err := r.failed(); err != nil {
		return err
	}
	o := r.Owner(key)
	r.routedOps.Add(1)
	r.objectOps[o].Add(1)
	if err := r.shards[o].PutObject(ctx, key, beliefs); err != nil {
		return err
	}
	if len(beliefs) == 0 {
		return nil
	}
	users := make([]string, 0, len(beliefs))
	for u := range beliefs {
		users = append(users, u)
	}
	sort.Strings(users) // deterministic registration order
	return r.broadcastRoots(ctx, o, users)
}

// DeleteObject routes the delete to the owning shard. Rootness is never
// withdrawn, so no broadcast is needed.
func (r *Router) DeleteObject(ctx context.Context, key string) (bool, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if err := r.failed(); err != nil {
		return false, err
	}
	o := r.Owner(key)
	r.routedOps.Add(1)
	r.objectOps[o].Add(1)
	return r.shards[o].DeleteObject(ctx, key)
}

// PutBelief routes the write to the owning shard, then broadcasts the
// user's root registration to every other shard (see PutObject).
func (r *Router) PutBelief(ctx context.Context, user, key, value string) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if err := r.failed(); err != nil {
		return err
	}
	o := r.Owner(key)
	r.routedOps.Add(1)
	r.objectOps[o].Add(1)
	if err := r.shards[o].PutBelief(ctx, user, key, value); err != nil {
		return err
	}
	return r.broadcastRoots(ctx, o, []string{user})
}

// DeleteBelief routes the revoke to the owning shard.
func (r *Router) DeleteBelief(ctx context.Context, user, key string) (bool, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if err := r.failed(); err != nil {
		return false, err
	}
	o := r.Owner(key)
	r.routedOps.Add(1)
	r.objectOps[o].Add(1)
	return r.shards[o].DeleteBelief(ctx, user, key)
}

// --- routed reads --------------------------------------------------------

// Object reads one stored object's explicit beliefs from its owner.
func (r *Router) Object(key string) (map[string]string, bool) {
	return r.shards[r.Owner(key)].Object(key)
}

// ResolveObject resolves one stored object on its owning shard.
func (r *Router) ResolveObject(ctx context.Context, key string) (trustmap.ObjectRow, error) {
	return r.shards[r.Owner(key)].ResolveObject(ctx, key)
}

// Resolve answers one ad-hoc object. Ad-hoc resolution reads only the
// spine (plus the passed beliefs), which is identical on every shard,
// so shard 0 answers for the cluster.
func (r *Router) Resolve(ctx context.Context, beliefs map[string]string) (SingleResult, error) {
	return r.shards[0].Resolve(ctx, beliefs)
}

// --- scatter-gather reads ------------------------------------------------

// Objects lists every shard's stored keys merged sorted. Ownership makes
// the per-shard (already sorted) lists disjoint.
func (r *Router) Objects() []string {
	r.scatterReads.Add(1)
	var out []string
	for _, st := range r.shards {
		out = append(out, st.Objects()...)
	}
	sort.Strings(out)
	return out
}

// mergedBulk is the scatter-gathered BulkResult: per-shard sub-batch
// resolutions plus the merged key list.
type mergedBulk struct {
	keys  []string
	parts map[int]*trustmap.BulkResolution
	owner func(key string) int
	epoch uint64
}

// Keys returns the resolved object keys, sorted.
func (m *mergedBulk) Keys() []string { return append([]string(nil), m.keys...) }

// Lookup delegates to the sub-resolution owning object.
func (m *mergedBulk) Lookup(user, object string) ([]string, string, error) {
	part, ok := m.parts[m.owner(object)]
	if !ok {
		return nil, "", fmt.Errorf("%w: %q", trustmap.ErrUnknownObject, object)
	}
	return part.Lookup(user, object)
}

// Epoch is the minimum pinned epoch over participating shards: the
// conservative bound every row is at least as fresh as.
func (m *mergedBulk) Epoch() uint64 { return m.epoch }

// BulkResolve splits the ad-hoc batch by wire.ShardOwner and resolves
// the sub-batches concurrently — the server-side counterpart of the
// client's shard-aware ResolveBatch. Any shard could answer any object
// (ad-hoc resolution is spine-only); splitting exists to spread the
// resolve work across the shards' independent caches and worker pools.
func (r *Router) BulkResolve(ctx context.Context, objects map[string]map[string]string) (BulkResult, error) {
	r.scatterReads.Add(1)
	split := make(map[int]map[string]map[string]string)
	for key, beliefs := range objects {
		o := r.Owner(key)
		if split[o] == nil {
			split[o] = make(map[string]map[string]string)
		}
		split[o][key] = beliefs
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		parts    = make(map[int]*trustmap.BulkResolution, len(split))
		firstErr error
	)
	for o, sub := range split {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := r.shards[o].ResolveBatch(ctx, sub)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			parts[o] = res
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	merged := &mergedBulk{parts: parts, owner: r.Owner}
	first := true
	for _, part := range parts {
		merged.keys = append(merged.keys, part.Keys()...)
		if e := part.Epoch(); first || e < merged.epoch {
			merged.epoch, first = e, false
		}
	}
	sort.Strings(merged.keys)
	return merged, nil
}

// Resolution is the scatter-gathered view over every stored object in
// the cluster, returned by ResolveAll: rows merged in global key order,
// one pinned epoch per shard.
type Resolution struct {
	keys   []string
	rows   map[string]trustmap.ObjectRow
	epochs []uint64
}

// Keys returns every resolved object key, globally sorted.
func (r *Resolution) Keys() []string { return append([]string(nil), r.keys...) }

// Lookup reports poss/cert for one user on one object; errors wrap
// trustmap.ErrUnknownUser / trustmap.ErrUnknownObject.
func (r *Resolution) Lookup(user, object string) ([]string, string, error) {
	row, ok := r.rows[object]
	if !ok {
		return nil, "", fmt.Errorf("%w: %q", trustmap.ErrUnknownObject, object)
	}
	return row.Lookup(user)
}

// Epoch is the minimum pinned epoch over shards (the conservative
// bound); ShardEpochs has the per-shard truth.
func (r *Resolution) Epoch() uint64 {
	min := uint64(0)
	for i, e := range r.epochs {
		if i == 0 || e < min {
			min = e
		}
	}
	return min
}

// ShardEpochs returns the epoch each shard's rows were pinned at, in
// shard-index order. Epoch counters are per shard: the values are not
// comparable across shards, only against later reads of the same shard.
func (r *Resolution) ShardEpochs() []uint64 { return append([]uint64(nil), r.epochs...) }

// ResolveAll resolves every stored object across all shards — each
// shard's batch at its own pinned epoch, resolved concurrently — and
// merges the rows in global key order.
func (r *Router) ResolveAll(ctx context.Context) (*Resolution, error) {
	r.scatterReads.Add(1)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		parts    = make([]*trustmap.StoreResolution, len(r.shards))
		firstErr error
	)
	for i, st := range r.shards {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := st.ResolveAll(ctx)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			parts[i] = res
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	out := &Resolution{rows: make(map[string]trustmap.ObjectRow), epochs: make([]uint64, len(parts))}
	for i, part := range parts {
		out.epochs[i] = part.Epoch()
		for row := range part.Rows() {
			out.keys = append(out.keys, row.Object)
			out.rows[row.Object] = row
		}
	}
	sort.Strings(out.keys)
	return out, nil
}

// Resolved streams every stored object's resolution across all shards in
// globally sorted key order: a k-way merge of the shards' own sorted
// Resolved streams (ownership makes their key sets disjoint). Each
// shard's rows are served at that shard's pinned epoch — per-shard
// consistency, not a global snapshot; the merge order is nonetheless
// deterministic because keys, not epochs, drive it. The first error from
// any shard ends the stream after being yielded.
func (r *Router) Resolved(ctx context.Context) iter.Seq2[trustmap.ObjectRow, error] {
	r.scatterReads.Add(1)
	return func(yield func(trustmap.ObjectRow, error) bool) {
		type cursor struct {
			next func() (trustmap.ObjectRow, error, bool)
			stop func()
			row  trustmap.ObjectRow
			ok   bool
		}
		cursors := make([]*cursor, len(r.shards))
		for i, st := range r.shards {
			next, stop := iter.Pull2(st.Resolved(ctx))
			cursors[i] = &cursor{next: next, stop: stop}
			defer stop()
		}
		// Prime every cursor, then repeatedly emit the smallest key.
		for _, c := range cursors {
			row, err, ok := c.next()
			if ok && err != nil {
				yield(trustmap.ObjectRow{}, err)
				return
			}
			c.row, c.ok = row, ok
		}
		for {
			var best *cursor
			for _, c := range cursors {
				if c.ok && (best == nil || c.row.Object < best.row.Object) {
					best = c
				}
			}
			if best == nil {
				return
			}
			if !yield(best.row, nil) {
				return
			}
			row, err, ok := best.next()
			if ok && err != nil {
				yield(trustmap.ObjectRow{}, err)
				return
			}
			best.row, best.ok = row, ok
		}
	}
}

// Users lists the trust network's users. The spine — network, defaults,
// root set — is identical on every shard (broadcasts keep it so), so
// shard 0 answers for the cluster; with Resolved, ResolveObject, Object,
// and Epoch this makes the Router a query.Site.
func (r *Router) Users() []string { return r.shards[0].Users() }

// Query compiles and executes one wire.Query across the cluster.
// Aggregate plans scatter: every shard runs a partial aggregation over
// its own objects at its own pinned epoch, concurrently, and the merge
// is exact because every aggregate function decomposes (count/sum/min/
// max directly, avg/rate as (sum, count) pairs) — no rows cross shards.
// Row plans run over the Router's key-ordered merged Resolved stream
// (the same per-shard-pinned merge discipline as ResolveAll); key
// pushdowns route to owners via ResolveObject either way.
func (r *Router) Query(ctx context.Context, q wire.Query) (*query.Result, error) {
	plan, err := query.Compile(q)
	if err != nil {
		return nil, err
	}
	if !plan.Aggregated() || len(r.shards) == 1 {
		res, err := query.Run(ctx, r, plan)
		if err != nil {
			return nil, err
		}
		return res, nil
	}
	r.scatterReads.Add(1)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		parts    = make([]*query.Partial, len(r.shards))
		firstErr error
	)
	for i, st := range r.shards {
		wg.Add(1)
		go func() {
			defer wg.Done()
			part, err := query.RunPartial(ctx, st, plan)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			parts[i] = part
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	res, err := query.Finalize(parts, plan)
	if err != nil {
		return nil, err
	}
	if res.Epoch == 0 {
		res.Epoch = r.Epoch() // no shard consumed a row
	}
	res.Stats.ShardPartials = len(parts)
	return res, nil
}

// --- aggregate surfaces --------------------------------------------------

// Epoch is the minimum published epoch over shards: the conservative
// read-your-writes bound (a mutation's response epoch is <= every
// shard's epoch serving a later read).
func (r *Router) Epoch() uint64 {
	min := uint64(0)
	for i, st := range r.shards {
		if e := st.Epoch(); i == 0 || e < min {
			min = e
		}
	}
	return min
}

// LSN is the minimum last-logged LSN over shards (shards log
// independently; per-shard truth is in ClusterStats).
func (r *Router) LSN() uint64 {
	min := uint64(0)
	for i, st := range r.shards {
		if l := st.LSN(); i == 0 || l < min {
			min = l
		}
	}
	return min
}

// EpochStats sums the store counters over shards and reports shard 0's
// engine stats — the spine (network, roots, plan) is identical on every
// shard, so one shard's engine view describes the cluster's.
func (r *Router) EpochStats() (trustmap.StoreStats, engine.Stats) {
	sum, eng := r.shards[0].EpochStats()
	for _, st := range r.shards[1:] {
		sst, _ := st.EpochStats()
		if sst.Epoch < sum.Epoch {
			sum.Epoch = sst.Epoch
		}
		sum.Objects += sst.Objects
		sum.CacheHits += sst.CacheHits
		sum.CacheMisses += sst.CacheMisses
		sum.Compiles += sst.Compiles
		sum.IncrementalApplies += sst.IncrementalApplies
		sum.ValueOnlyUpdates += sst.ValueOnlyUpdates
		sum.FullRecompiles += sst.FullRecompiles
		sum.EpochsReclaimed += sst.EpochsReclaimed
	}
	return sum, eng
}

// Durability reports minimum watermarks (the conservative durable
// frontier) and summed activity counters over shards; shard 0 names the
// mode (all shards share one configuration).
func (r *Router) Durability() trustmap.DurabilityStats {
	out := r.shards[0].Durability()
	for _, st := range r.shards[1:] {
		d := st.Durability()
		if d.LastLSN < out.LastLSN {
			out.LastLSN = d.LastLSN
		}
		if d.DurableLSN < out.DurableLSN {
			out.DurableLSN = d.DurableLSN
		}
		if d.SnapshotLSN < out.SnapshotLSN {
			out.SnapshotLSN = d.SnapshotLSN
		}
		out.WALAppends += d.WALAppends
		out.WALSyncs += d.WALSyncs
		out.WALBytes += d.WALBytes
		out.Checkpoints += d.Checkpoints
		out.RecoveredBatches += d.RecoveredBatches
		out.ReplayedOps += d.ReplayedOps
		out.ReplayErrors += d.ReplayErrors
		out.DiscardedBytes += d.DiscardedBytes
	}
	return out
}

// Checkpoint compacts every shard's WAL, reporting the minimum
// watermarks and shard 0's snapshot name. Object ops proceed on other
// shards while one shard compacts (read lock only).
func (r *Router) Checkpoint() (trustmap.CheckpointInfo, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out trustmap.CheckpointInfo
	for i, st := range r.shards {
		ck, err := st.Checkpoint()
		if err != nil {
			return trustmap.CheckpointInfo{}, err
		}
		if i == 0 {
			out = ck
			continue
		}
		if ck.Epoch < out.Epoch {
			out.Epoch = ck.Epoch
		}
		if ck.LSN < out.LSN {
			out.LSN = ck.LSN
		}
	}
	return out, nil
}

// ClusterStats reports the routing table, the conserved router op
// counters, and one ShardStats per shard.
func (r *Router) ClusterStats() *wire.ClusterStats {
	out := &wire.ClusterStats{
		Shards:       len(r.shards),
		Hash:         wire.ShardHash,
		SpineOps:     r.spineOps.Load(),
		RoutedOps:    r.routedOps.Load(),
		ScatterReads: r.scatterReads.Load(),
		PerShard:     make([]wire.ShardStats, len(r.shards)),
	}
	for i, st := range r.shards {
		sst, _ := st.EpochStats()
		out.PerShard[i] = wire.ShardStats{
			Index:       i,
			Objects:     sst.Objects,
			Epoch:       sst.Epoch,
			LSN:         st.LSN(),
			DurableLSN:  st.DurableLSN(),
			ObjectOps:   r.objectOps[i].Load(),
			CacheHits:   sst.CacheHits,
			CacheMisses: sst.CacheMisses,
		}
	}
	return out
}

// Close closes every shard, returning the first error.
func (r *Router) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var first error
	for _, st := range r.shards {
		if err := st.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
