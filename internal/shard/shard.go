// Package shard is the horizontal scale-out layer: a Router that
// partitions stored objects across N in-process trustmap.Store shards by
// consistent hashing of object keys (wire.ShardOwner), and the Backend
// interface internal/httpd serves so one handler stack runs unchanged
// over a single store or a cluster.
//
// The partitioning exploits the system's natural factoring: the trust
// network, default beliefs, and root set — the "spine" — are shared by
// every object's resolution, while per-object beliefs and cached
// resolutions touch exactly one object. The Router therefore broadcasts
// spine mutations (/v1/mutate batches, root registration) to every shard
// in lockstep and routes each object mutation to the one shard owning its
// key. Every shard then resolves its own objects against an identical
// spine, so scatter-gathered reads merge into exactly the answer one
// big store would give — the oracle-parity invariant cmd/clusterharness
// proves under -race (make cluster-smoke).
//
// Write scale-out comes from the lock split: spine broadcasts serialize
// under the Router's write lock (they must apply in the same order on
// every shard), but object mutations take only the read lock and proceed
// concurrently — each shard's own writer mutex serializes its WAL
// appends, so N shards fsync in parallel.
//
// Consistency across shards is per-shard-epoch, not a global snapshot:
// a scatter-gathered read pins one published epoch on every shard, and
// the merged response reports the minimum epoch/LSN as the conservative
// read-your-writes bound (per-shard truth lives in wire.ClusterStats).
package shard

import (
	"context"
	"fmt"

	"trustmap"
	"trustmap/internal/engine"
	"trustmap/internal/query"
	"trustmap/wire"
)

// SingleResult is the resolved view of one ad-hoc object: the surface
// httpd's /v1/resolve handler needs. *trustmap.ObjectResolution is the
// single-store implementation.
type SingleResult interface {
	// Lookup reports poss/cert for one user; unknown users answer an
	// error wrapping trustmap.ErrUnknownUser.
	Lookup(user string) (possible []string, certain string, err error)
	// Epoch is the publication generation that served the resolution —
	// on a cluster, the minimum pinned epoch over participating shards.
	Epoch() uint64
}

// BulkResult is the resolved view of an ad-hoc object batch: the surface
// httpd's /v1/bulk-resolve handler needs. *trustmap.BulkResolution is the
// single-store implementation; a Router answers with a merged view over
// per-shard sub-batches.
type BulkResult interface {
	// Keys returns the resolved object keys, sorted.
	Keys() []string
	// Lookup reports poss/cert for one user on one object.
	Lookup(user, object string) (possible []string, certain string, err error)
	// Epoch is the publication generation that served the batch — on a
	// cluster, the minimum pinned epoch over participating shards.
	Epoch() uint64
}

// Backend is the store surface internal/httpd serves: everything the
// wire-schema handlers need, implemented by SingleStore over one
// trustmap.Store and by Router over a sharded cluster. Endpoints that
// need the concrete store underneath (WAL streaming, snapshot shipping)
// type-assert for Storer instead and answer 400 on a cluster.
type Backend interface {
	// Epoch is the published generation serving reads; a Router reports
	// the minimum over shards (the conservative read-your-writes bound).
	Epoch() uint64
	// LSN is the last logged WAL sequence number (zero in-memory); a
	// Router reports the minimum over shards.
	LSN() uint64
	// EpochStats snapshots store and engine counters at one pinned epoch.
	// A Router sums store counters over shards and reports shard 0's
	// engine stats (the spine is identical everywhere).
	EpochStats() (trustmap.StoreStats, engine.Stats)
	// Durability snapshots the durability counters; a Router reports
	// minimum watermarks and summed counters.
	Durability() trustmap.DurabilityStats
	// Checkpoint compacts the WAL into a snapshot — on a Router, every
	// shard's WAL, reporting the minimum watermarks.
	Checkpoint() (trustmap.CheckpointInfo, error)

	// Mutate applies one trust-network batch: op i fails the batch with
	// an error prefixed "op i:", leaving ops before it applied. A Router
	// broadcasts the batch to every shard in lockstep.
	Mutate(ops []wire.Op) (applied int, err error)

	// Resolve answers one ad-hoc object (spine-only: any shard agrees).
	Resolve(ctx context.Context, beliefs map[string]string) (SingleResult, error)
	// BulkResolve answers an ad-hoc batch; a Router splits it by
	// wire.ShardOwner and resolves the sub-batches concurrently.
	BulkResolve(ctx context.Context, objects map[string]map[string]string) (BulkResult, error)

	// Query compiles and executes one wire.Query pattern (POST
	// /v1/query). A Router scatter-gathers aggregate plans as per-shard
	// partial aggregations merged in group-key order, and runs row plans
	// over its key-ordered merged stream; compile rejections wrap
	// query.ErrBadQuery.
	Query(ctx context.Context, q wire.Query) (*query.Result, error)

	// Objects lists stored object keys, sorted — merged over shards.
	Objects() []string
	// Object reads one stored object's explicit beliefs from its owner.
	Object(key string) (map[string]string, bool)
	// ResolveObject resolves one stored object on its owning shard.
	ResolveObject(ctx context.Context, key string) (trustmap.ObjectRow, error)
	// PutObject routes the write to the owner and broadcasts the
	// mentioned users' root registration to every other shard.
	PutObject(ctx context.Context, key string, beliefs map[string]string) error
	// DeleteObject routes the delete to the owner.
	DeleteObject(ctx context.Context, key string) (bool, error)
	// PutBelief routes the write to the owner and broadcasts the user's
	// root registration to every other shard.
	PutBelief(ctx context.Context, user, key, value string) error
	// DeleteBelief routes the revoke to the owner.
	DeleteBelief(ctx context.Context, user, key string) (bool, error)

	// Shards is the routing-table size a shard-aware client splits
	// batches with (wire.Health.Shards); zero on an unsharded backend.
	Shards() int
	// ClusterStats is the /v1/stats cluster section; nil on an unsharded
	// backend.
	ClusterStats() *wire.ClusterStats

	// Close releases every underlying store.
	Close() error
}

// Storer exposes the concrete store under a Backend. SingleStore
// implements it; Router deliberately does not — per-shard WALs have
// independent LSN spaces, so there is no one log to stream — which is
// how httpd's replication endpoints detect a cluster and answer 400.
type Storer interface {
	// Store returns the backend's single underlying store.
	Store() *trustmap.Store
}

// SingleStore adapts one *trustmap.Store to the Backend interface: the
// unsharded deployment, byte-for-byte the pre-cluster serving behavior.
type SingleStore struct {
	st *trustmap.Store
}

// NewSingleStore wraps st; st must be non-nil.
func NewSingleStore(st *trustmap.Store) *SingleStore {
	if st == nil {
		panic("shard: NewSingleStore(nil)")
	}
	return &SingleStore{st: st}
}

// Store returns the wrapped store (the Storer interface httpd's
// replication endpoints assert for).
func (s *SingleStore) Store() *trustmap.Store { return s.st }

// Epoch reports the store's published generation.
func (s *SingleStore) Epoch() uint64 { return s.st.Epoch() }

// LSN reports the store's last logged WAL sequence number.
func (s *SingleStore) LSN() uint64 { return s.st.LSN() }

// EpochStats snapshots store and engine counters at one pinned epoch.
func (s *SingleStore) EpochStats() (trustmap.StoreStats, engine.Stats) { return s.st.EpochStats() }

// Durability snapshots the store's durability counters.
func (s *SingleStore) Durability() trustmap.DurabilityStats { return s.st.Durability() }

// Checkpoint compacts the store's WAL into a snapshot.
func (s *SingleStore) Checkpoint() (trustmap.CheckpointInfo, error) { return s.st.Checkpoint() }

// Mutate applies one trust-network batch atomically, reporting how many
// ops applied; op i fails with an error prefixed "op i:".
func (s *SingleStore) Mutate(ops []wire.Op) (applied int, err error) {
	return mutateStore(s.st, ops)
}

// mutateStore is the shared one-store mutate body: SingleStore's whole
// implementation, and the per-shard step of Router's lockstep broadcast.
func mutateStore(st *trustmap.Store, ops []wire.Op) (applied int, err error) {
	err = st.Update(func(tx *trustmap.StoreTx) error {
		for i, op := range ops {
			if err := op.Apply(tx); err != nil {
				return fmt.Errorf("op %d: %w", i, err)
			}
			applied++
		}
		return nil
	})
	return applied, err
}

// Resolve answers one ad-hoc object.
func (s *SingleStore) Resolve(ctx context.Context, beliefs map[string]string) (SingleResult, error) {
	return s.st.Resolve(ctx, beliefs)
}

// BulkResolve answers an ad-hoc object batch.
func (s *SingleStore) BulkResolve(ctx context.Context, objects map[string]map[string]string) (BulkResult, error) {
	return s.st.ResolveBatch(ctx, objects)
}

// Query compiles and executes one wire.Query against the store (the
// store is itself a query.Site: pinned stream, point resolution, belief
// table, user universe).
func (s *SingleStore) Query(ctx context.Context, q wire.Query) (*query.Result, error) {
	plan, err := query.Compile(q)
	if err != nil {
		return nil, err
	}
	return query.Run(ctx, s.st, plan)
}

// Objects lists stored object keys, sorted.
func (s *SingleStore) Objects() []string { return s.st.Objects() }

// Object reads one stored object's explicit beliefs.
func (s *SingleStore) Object(key string) (map[string]string, bool) { return s.st.Object(key) }

// ResolveObject resolves one stored object at the published epoch.
func (s *SingleStore) ResolveObject(ctx context.Context, key string) (trustmap.ObjectRow, error) {
	return s.st.ResolveObject(ctx, key)
}

// PutObject creates or replaces one object's explicit beliefs.
func (s *SingleStore) PutObject(ctx context.Context, key string, beliefs map[string]string) error {
	return s.st.PutObject(ctx, key, beliefs)
}

// DeleteObject removes one object, reporting whether it existed.
func (s *SingleStore) DeleteObject(ctx context.Context, key string) (bool, error) {
	return s.st.DeleteObject(ctx, key)
}

// PutBelief states one user's explicit belief about one object.
func (s *SingleStore) PutBelief(ctx context.Context, user, key, value string) error {
	return s.st.PutBelief(ctx, user, key, value)
}

// DeleteBelief revokes one user's explicit belief about one object.
func (s *SingleStore) DeleteBelief(ctx context.Context, user, key string) (bool, error) {
	return s.st.DeleteBelief(ctx, user, key)
}

// Shards is zero: no routing table to advertise.
func (s *SingleStore) Shards() int { return 0 }

// ClusterStats is nil: no cluster section on an unsharded server.
func (s *SingleStore) ClusterStats() *wire.ClusterStats { return nil }

// Close closes the wrapped store.
func (s *SingleStore) Close() error { return s.st.Close() }
