package sqlmem

// Tokenizer and expression parser for the SQL subset.

import (
	"fmt"
	"strings"
	"unicode"
)

type sqlTok struct {
	kind string // word, str, punct
	text string
	pos  int
}

func tokenize(src string) ([]sqlTok, error) {
	var toks []sqlTok
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case unicode.IsSpace(rune(c)):
			i++
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for j < len(src) {
				if src[j] == '\'' {
					// '' escapes a quote.
					if j+1 < len(src) && src[j+1] == '\'' {
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(src[j])
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("sqlmem: unterminated string at offset %d", i)
			}
			toks = append(toks, sqlTok{"str", sb.String(), i})
			i = j + 1
		case c == '!' && i+1 < len(src) && src[i+1] == '=':
			toks = append(toks, sqlTok{"punct", "!=", i})
			i += 2
		case c == '<' && i+1 < len(src) && src[i+1] == '>':
			toks = append(toks, sqlTok{"punct", "!=", i})
			i += 2
		case strings.ContainsRune("(),=*.", rune(c)):
			toks = append(toks, sqlTok{"punct", string(c), i})
			i++
		case c == ';':
			i++ // statement terminator, ignored
		case unicode.IsLetter(rune(c)) || c == '_' || unicode.IsDigit(rune(c)):
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			toks = append(toks, sqlTok{"word", src[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("sqlmem: unexpected character %q at offset %d", c, i)
		}
	}
	return toks, nil
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "INSERT": true,
	"INTO": true, "VALUES": true, "CREATE": true, "TABLE": true,
	"INDEX": true, "ON": true, "DELETE": true, "DISTINCT": true,
	"AS": true, "AND": true, "OR": true, "NOT": true, "ORDER": true,
	"BY": true, "DESC": true, "ASC": true, "DROP": true, "COUNT": true,
}

func isKeyword(w string) bool { return keywords[strings.ToUpper(w)] }

type sqlParser struct {
	toks []sqlTok
	pos  int
}

func (p *sqlParser) atEnd() bool { return p.pos >= len(p.toks) }

func (p *sqlParser) errf(format string, args ...interface{}) error {
	off := -1
	near := "end of input"
	if p.pos < len(p.toks) {
		off = p.toks[p.pos].pos
		near = p.toks[p.pos].text
	}
	return fmt.Errorf("sqlmem: %s (near %q, offset %d)", fmt.Sprintf(format, args...), near, off)
}

func (p *sqlParser) matchWord(w string) bool {
	if p.pos < len(p.toks) && p.toks[p.pos].kind == "word" && strings.EqualFold(p.toks[p.pos].text, w) {
		p.pos++
		return true
	}
	return false
}

func (p *sqlParser) matchAnyWord() bool {
	if p.pos < len(p.toks) && p.toks[p.pos].kind == "word" && !isKeyword(p.toks[p.pos].text) {
		p.pos++
		return true
	}
	return false
}

func (p *sqlParser) matchPunct(t string) bool {
	if p.pos < len(p.toks) && p.toks[p.pos].kind == "punct" && p.toks[p.pos].text == t {
		p.pos++
		return true
	}
	return false
}

func (p *sqlParser) ident() (string, error) {
	if p.pos < len(p.toks) && p.toks[p.pos].kind == "word" {
		w := p.toks[p.pos].text
		p.pos++
		return w, nil
	}
	return "", p.errf("expected identifier")
}

func (p *sqlParser) peekIdent() (string, bool) {
	if p.pos < len(p.toks) && p.toks[p.pos].kind == "word" {
		return p.toks[p.pos].text, true
	}
	return "", false
}

func (p *sqlParser) str() (string, bool) {
	if p.pos < len(p.toks) && p.toks[p.pos].kind == "str" {
		s := p.toks[p.pos].text
		p.pos++
		return s, true
	}
	return "", false
}

// columnRef parses col or alias.col, returning the upper-cased column name
// (the alias is informational: only one table per query).
func (p *sqlParser) columnRef() (string, error) {
	first, err := p.ident()
	if err != nil {
		return "", err
	}
	if p.matchPunct(".") {
		col, err := p.ident()
		if err != nil {
			return "", err
		}
		return strings.ToUpper(col), nil
	}
	return strings.ToUpper(first), nil
}

// ---- WHERE expressions ----

type exprKind int

const (
	exprCmp exprKind = iota
	exprAnd
	exprOr
	exprNot
)

type operand struct {
	isLit bool
	lit   string
	col   string
	ci    int // bound column index
}

type expr struct {
	kind exprKind
	eq   bool // for exprCmp: '=' vs '!='
	l, r operand
	kids []*expr
}

func (p *sqlParser) parseOr() (*expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	kids := []*expr{left}
	for p.matchWord("OR") {
		next, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		kids = append(kids, next)
	}
	if len(kids) == 1 {
		return left, nil
	}
	return &expr{kind: exprOr, kids: kids}, nil
}

func (p *sqlParser) parseAnd() (*expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	kids := []*expr{left}
	for p.matchWord("AND") {
		next, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		kids = append(kids, next)
	}
	if len(kids) == 1 {
		return left, nil
	}
	return &expr{kind: exprAnd, kids: kids}, nil
}

func (p *sqlParser) parseUnary() (*expr, error) {
	if p.matchWord("NOT") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &expr{kind: exprNot, kids: []*expr{e}}, nil
	}
	if p.matchPunct("(") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if !p.matchPunct(")") {
			return nil, p.errf("expected )")
		}
		return e, nil
	}
	return p.parseCmp()
}

func (p *sqlParser) parseOperand() (operand, error) {
	if s, ok := p.str(); ok {
		return operand{isLit: true, lit: s}, nil
	}
	col, err := p.columnRef()
	if err != nil {
		return operand{}, err
	}
	return operand{col: col}, nil
}

func (p *sqlParser) parseCmp() (*expr, error) {
	l, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	var eq bool
	switch {
	case p.matchPunct("="):
		eq = true
	case p.matchPunct("!="):
		eq = false
	default:
		return nil, p.errf("expected = or !=")
	}
	r, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return &expr{kind: exprCmp, eq: eq, l: l, r: r}, nil
}

// bind resolves column references against the table schema.
func (e *expr) bind(t *table) error {
	bindOp := func(o *operand) error {
		if o.isLit {
			return nil
		}
		ci, ok := t.colIdx[o.col]
		if !ok {
			return fmt.Errorf("sqlmem: unknown column %s", o.col)
		}
		o.ci = ci
		return nil
	}
	if e.kind == exprCmp {
		if err := bindOp(&e.l); err != nil {
			return err
		}
		return bindOp(&e.r)
	}
	for _, k := range e.kids {
		if err := k.bind(t); err != nil {
			return err
		}
	}
	return nil
}

func (o operand) value(row []string) string {
	if o.isLit {
		return o.lit
	}
	return row[o.ci]
}

func (e *expr) eval(row []string) (bool, error) {
	switch e.kind {
	case exprCmp:
		equal := e.l.value(row) == e.r.value(row)
		return equal == e.eq, nil
	case exprAnd:
		for _, k := range e.kids {
			ok, err := k.eval(row)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	case exprOr:
		for _, k := range e.kids {
			ok, err := k.eval(row)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	case exprNot:
		ok, err := e.kids[0].eval(row)
		return !ok, err
	}
	return false, fmt.Errorf("sqlmem: bad expression")
}

// orEqChain recognizes col='a' OR col='b' OR ... (or a single equality)
// over one column, enabling index lookups.
func (e *expr) orEqChain() (col string, vals []string, ok bool) {
	collect := func(c *expr) bool {
		if c.kind != exprCmp || !c.eq {
			return false
		}
		var cref operand
		var lit operand
		switch {
		case !c.l.isLit && c.r.isLit:
			cref, lit = c.l, c.r
		case c.l.isLit && !c.r.isLit:
			cref, lit = c.r, c.l
		default:
			return false
		}
		if col == "" {
			col = cref.col
		} else if col != cref.col {
			return false
		}
		vals = append(vals, lit.lit)
		return true
	}
	if e.kind == exprCmp {
		if collect(e) {
			return col, vals, true
		}
		return "", nil, false
	}
	if e.kind != exprOr {
		return "", nil, false
	}
	for _, k := range e.kids {
		if !collect(k) {
			return "", nil, false
		}
	}
	return col, vals, true
}
