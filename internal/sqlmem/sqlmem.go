// Package sqlmem is a small in-memory relational engine executing the SQL
// subset that the paper's bulk conflict resolution emits (Section 4,
// Appendix B.10). It is this repository's substitute for the Microsoft SQL
// Server 2005 instance used in the paper's Figure 8c experiment.
//
// Supported statements:
//
//	CREATE TABLE t (col1 VARCHAR, col2 VARCHAR, ...)
//	CREATE INDEX name ON t (col)
//	INSERT INTO t VALUES ('a','b'), ('c','d')
//	INSERT INTO t SELECT [DISTINCT] 'x' AS X, s.K, s.V FROM t2 s WHERE ...
//	SELECT [DISTINCT] cols FROM t [alias] [WHERE expr] [ORDER BY col [DESC]]
//	SELECT COUNT(*) FROM t [alias] [WHERE expr]
//	DELETE FROM t [WHERE expr]
//	DROP TABLE t
//
// Expressions combine =, != and <> comparisons between columns and string
// literals with AND, OR, NOT and parentheses. All values are strings, as in
// the paper's POSS(X,K,V) relation. Equality predicates against indexed
// columns (including OR-chains over one column, the shape the bulk
// algorithm generates) use hash indexes instead of scanning.
package sqlmem

import (
	"fmt"
	"sort"
	"strings"
)

// DB is an in-memory database. It is not safe for concurrent use; wrap it
// if multiple goroutines share one instance.
type DB struct {
	tables map[string]*table
}

type table struct {
	name    string
	cols    []string
	colIdx  map[string]int
	rows    [][]string
	indexes map[string]map[string][]int // col -> value -> row numbers
}

// Result is the outcome of a statement: rows for SELECT, affected count for
// writes.
type Result struct {
	Cols     []string
	Rows     [][]string
	Affected int
}

// New returns an empty database.
func New() *DB { return &DB{tables: make(map[string]*table)} }

// MustExec runs a statement and panics on error (tests, fixtures).
func (db *DB) MustExec(sql string) *Result {
	r, err := db.Exec(sql)
	if err != nil {
		panic(fmt.Sprintf("sqlmem: %v\nstatement: %s", err, sql))
	}
	return r
}

// Exec parses and executes one SQL statement.
func (db *DB) Exec(sql string) (*Result, error) {
	toks, err := tokenize(sql)
	if err != nil {
		return nil, err
	}
	p := &sqlParser{toks: toks}
	defer func() {}()
	switch {
	case p.matchWord("CREATE"):
		if p.matchWord("TABLE") {
			return db.createTable(p)
		}
		if p.matchWord("INDEX") {
			return db.createIndex(p)
		}
		return nil, p.errf("expected TABLE or INDEX after CREATE")
	case p.matchWord("INSERT"):
		return db.insert(p)
	case p.matchWord("SELECT"):
		return db.selectStmt(p)
	case p.matchWord("DELETE"):
		return db.deleteStmt(p)
	case p.matchWord("DROP"):
		if !p.matchWord("TABLE") {
			return nil, p.errf("expected TABLE after DROP")
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, ok := db.tables[strings.ToUpper(name)]; !ok {
			return nil, fmt.Errorf("sqlmem: unknown table %s", name)
		}
		delete(db.tables, strings.ToUpper(name))
		return &Result{}, nil
	}
	return nil, p.errf("unsupported statement")
}

// Table returns the number of rows in a table (testing convenience).
func (db *DB) NumRows(name string) int {
	t := db.tables[strings.ToUpper(name)]
	if t == nil {
		return -1
	}
	return len(t.rows)
}

func (db *DB) createTable(p *sqlParser) (*Result, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	key := strings.ToUpper(name)
	if _, ok := db.tables[key]; ok {
		return nil, fmt.Errorf("sqlmem: table %s already exists", name)
	}
	if !p.matchPunct("(") {
		return nil, p.errf("expected ( in CREATE TABLE")
	}
	t := &table{name: key, colIdx: make(map[string]int), indexes: make(map[string]map[string][]int)}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		cu := strings.ToUpper(col)
		if _, dup := t.colIdx[cu]; dup {
			return nil, fmt.Errorf("sqlmem: duplicate column %s", col)
		}
		t.colIdx[cu] = len(t.cols)
		t.cols = append(t.cols, cu)
		// Optional type name, ignored (all strings).
		p.matchAnyWord()
		if p.matchPunct(",") {
			continue
		}
		break
	}
	if !p.matchPunct(")") {
		return nil, p.errf("expected ) in CREATE TABLE")
	}
	db.tables[key] = t
	return &Result{}, nil
}

func (db *DB) createIndex(p *sqlParser) (*Result, error) {
	if _, err := p.ident(); err != nil { // index name, unused
		return nil, err
	}
	if !p.matchWord("ON") {
		return nil, p.errf("expected ON in CREATE INDEX")
	}
	tname, err := p.ident()
	if err != nil {
		return nil, err
	}
	t := db.tables[strings.ToUpper(tname)]
	if t == nil {
		return nil, fmt.Errorf("sqlmem: unknown table %s", tname)
	}
	if !p.matchPunct("(") {
		return nil, p.errf("expected ( in CREATE INDEX")
	}
	col, err := p.ident()
	if err != nil {
		return nil, err
	}
	if !p.matchPunct(")") {
		return nil, p.errf("expected ) in CREATE INDEX")
	}
	cu := strings.ToUpper(col)
	ci, ok := t.colIdx[cu]
	if !ok {
		return nil, fmt.Errorf("sqlmem: unknown column %s", col)
	}
	idx := make(map[string][]int)
	for i, row := range t.rows {
		idx[row[ci]] = append(idx[row[ci]], i)
	}
	t.indexes[cu] = idx
	return &Result{}, nil
}

func (t *table) appendRow(row []string) {
	n := len(t.rows)
	t.rows = append(t.rows, row)
	for col, idx := range t.indexes {
		v := row[t.colIdx[col]]
		idx[v] = append(idx[v], n)
	}
}

func (db *DB) insert(p *sqlParser) (*Result, error) {
	if !p.matchWord("INTO") {
		return nil, p.errf("expected INTO")
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	t := db.tables[strings.ToUpper(name)]
	if t == nil {
		return nil, fmt.Errorf("sqlmem: unknown table %s", name)
	}
	switch {
	case p.matchWord("VALUES"):
		n := 0
		for {
			if !p.matchPunct("(") {
				return nil, p.errf("expected ( in VALUES")
			}
			var row []string
			for {
				v, ok := p.str()
				if !ok {
					return nil, p.errf("expected string literal in VALUES")
				}
				row = append(row, v)
				if p.matchPunct(",") {
					continue
				}
				break
			}
			if !p.matchPunct(")") {
				return nil, p.errf("expected ) in VALUES")
			}
			if len(row) != len(t.cols) {
				return nil, fmt.Errorf("sqlmem: %d values for %d columns", len(row), len(t.cols))
			}
			t.appendRow(row)
			n++
			if p.matchPunct(",") {
				continue
			}
			break
		}
		return &Result{Affected: n}, nil
	case p.matchWord("SELECT"):
		res, err := db.runSelect(p)
		if err != nil {
			return nil, err
		}
		if len(res.Cols) != len(t.cols) {
			return nil, fmt.Errorf("sqlmem: select yields %d columns, table has %d", len(res.Cols), len(t.cols))
		}
		for _, row := range res.Rows {
			t.appendRow(append([]string(nil), row...))
		}
		return &Result{Affected: len(res.Rows)}, nil
	}
	return nil, p.errf("expected VALUES or SELECT")
}

func (db *DB) selectStmt(p *sqlParser) (*Result, error) {
	return db.runSelect(p)
}

// selectItem is one projection: a literal or a column reference.
type selectItem struct {
	isLit   bool
	lit     string
	col     string // upper-case, alias stripped
	outName string
}

func (db *DB) runSelect(p *sqlParser) (*Result, error) {
	distinct := p.matchWord("DISTINCT")
	// COUNT(*)
	if p.matchWord("COUNT") {
		if !p.matchPunct("(") || !p.matchPunct("*") || !p.matchPunct(")") {
			return nil, p.errf("expected COUNT(*)")
		}
		t, alias, err := db.fromClause(p)
		if err != nil {
			return nil, err
		}
		match, err := db.whereClause(p, t, alias)
		if err != nil {
			return nil, err
		}
		n := 0
		for _, ri := range match {
			_ = ri
			n++
		}
		return &Result{Cols: []string{"COUNT"}, Rows: [][]string{{fmt.Sprint(n)}}}, nil
	}
	// Projection list.
	var items []selectItem
	star := false
	if p.matchPunct("*") {
		star = true
	} else {
		for {
			it := selectItem{}
			if s, ok := p.str(); ok {
				it.isLit = true
				it.lit = s
				it.outName = "LIT"
			} else {
				ref, err := p.columnRef()
				if err != nil {
					return nil, err
				}
				it.col = ref
				it.outName = ref
			}
			if p.matchWord("AS") {
				name, err := p.ident()
				if err != nil {
					return nil, err
				}
				it.outName = strings.ToUpper(name)
			}
			items = append(items, it)
			if p.matchPunct(",") {
				continue
			}
			break
		}
	}
	t, alias, err := db.fromClause(p)
	if err != nil {
		return nil, err
	}
	match, err := db.whereClause(p, t, alias)
	if err != nil {
		return nil, err
	}
	// ORDER BY (optional, single column).
	orderCol := -1
	orderDesc := false
	if p.matchWord("ORDER") {
		if !p.matchWord("BY") {
			return nil, p.errf("expected BY")
		}
		ref, err := p.columnRef()
		if err != nil {
			return nil, err
		}
		ci, ok := t.colIdx[ref]
		if !ok {
			return nil, fmt.Errorf("sqlmem: unknown column %s", ref)
		}
		orderCol = ci
		if p.matchWord("DESC") {
			orderDesc = true
		} else {
			p.matchWord("ASC")
		}
	}
	if !p.atEnd() {
		return nil, p.errf("trailing input")
	}
	if star {
		for _, c := range t.cols {
			items = append(items, selectItem{col: c, outName: c})
		}
	}
	cols := make([]string, len(items))
	proj := make([]int, len(items))
	for i, it := range items {
		cols[i] = it.outName
		if it.isLit {
			proj[i] = -1
			continue
		}
		ci, ok := t.colIdx[it.col]
		if !ok {
			return nil, fmt.Errorf("sqlmem: unknown column %s", it.col)
		}
		proj[i] = ci
	}
	if orderCol >= 0 {
		sort.SliceStable(match, func(a, b int) bool {
			va, vb := t.rows[match[a]][orderCol], t.rows[match[b]][orderCol]
			if orderDesc {
				return va > vb
			}
			return va < vb
		})
	}
	res := &Result{Cols: cols}
	var seen map[string]bool
	if distinct {
		seen = make(map[string]bool)
	}
	for _, ri := range match {
		row := make([]string, len(items))
		for i, it := range items {
			if it.isLit {
				row[i] = it.lit
			} else {
				row[i] = t.rows[ri][proj[i]]
			}
		}
		if distinct {
			key := strings.Join(row, "\x00")
			if seen[key] {
				continue
			}
			seen[key] = true
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func (db *DB) fromClause(p *sqlParser) (*table, string, error) {
	if !p.matchWord("FROM") {
		return nil, "", p.errf("expected FROM")
	}
	name, err := p.ident()
	if err != nil {
		return nil, "", err
	}
	t := db.tables[strings.ToUpper(name)]
	if t == nil {
		return nil, "", fmt.Errorf("sqlmem: unknown table %s", name)
	}
	alias := ""
	if w, ok := p.peekIdent(); ok && !isKeyword(w) {
		p.pos++
		alias = strings.ToUpper(w)
	}
	return t, alias, nil
}

// whereClause parses the optional WHERE and returns matching row numbers.
func (db *DB) whereClause(p *sqlParser, t *table, alias string) ([]int, error) {
	if !p.matchWord("WHERE") {
		all := make([]int, len(t.rows))
		for i := range all {
			all[i] = i
		}
		return all, nil
	}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if err := e.bind(t); err != nil {
		return nil, err
	}
	// Index fast path: a pure OR-chain of equality tests on one indexed
	// column (the shape the bulk algorithm emits).
	if col, vals, ok := e.orEqChain(); ok {
		if idx, have := t.indexes[col]; have {
			var out []int
			seen := make(map[int]bool)
			for _, v := range vals {
				for _, ri := range idx[v] {
					if !seen[ri] {
						seen[ri] = true
						out = append(out, ri)
					}
				}
			}
			sort.Ints(out)
			return out, nil
		}
	}
	var out []int
	for ri, row := range t.rows {
		ok, err := e.eval(row)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, ri)
		}
	}
	return out, nil
}

func (db *DB) deleteStmt(p *sqlParser) (*Result, error) {
	if !p.matchWord("FROM") {
		return nil, p.errf("expected FROM")
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	t := db.tables[strings.ToUpper(name)]
	if t == nil {
		return nil, fmt.Errorf("sqlmem: unknown table %s", name)
	}
	match, err := db.whereClause(p, t, "")
	if err != nil {
		return nil, err
	}
	if !p.atEnd() {
		return nil, p.errf("trailing input")
	}
	drop := make(map[int]bool, len(match))
	for _, ri := range match {
		drop[ri] = true
	}
	kept := t.rows[:0]
	for ri, row := range t.rows {
		if !drop[ri] {
			kept = append(kept, row)
		}
	}
	t.rows = kept
	// Rebuild indexes.
	for col := range t.indexes {
		idx := make(map[string][]int)
		ci := t.colIdx[col]
		for i, row := range t.rows {
			idx[row[ci]] = append(idx[row[ci]], i)
		}
		t.indexes[col] = idx
	}
	return &Result{Affected: len(match)}, nil
}
