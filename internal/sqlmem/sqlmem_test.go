package sqlmem

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func newPoss(t *testing.T) *DB {
	t.Helper()
	db := New()
	db.MustExec("CREATE TABLE POSS (X VARCHAR, K VARCHAR, V VARCHAR)")
	return db
}

func TestCreateInsertSelect(t *testing.T) {
	db := newPoss(t)
	r := db.MustExec("INSERT INTO POSS VALUES ('x1','k1','v'), ('x2','k1','w')")
	if r.Affected != 2 {
		t.Fatalf("affected=%d want 2", r.Affected)
	}
	res := db.MustExec("SELECT X, V FROM POSS WHERE K = 'k1' ORDER BY X")
	if len(res.Rows) != 2 || res.Rows[0][0] != "x1" || res.Rows[1][1] != "w" {
		t.Errorf("unexpected rows %v", res.Rows)
	}
	if res.Cols[0] != "X" || res.Cols[1] != "V" {
		t.Errorf("unexpected cols %v", res.Cols)
	}
}

func TestPaperStep1Statement(t *testing.T) {
	// The exact Step-1 bulk insertion of Section 4.
	db := newPoss(t)
	db.MustExec("INSERT INTO POSS VALUES ('z','k1','v'), ('z','k2','w'), ('other','k1','u')")
	r := db.MustExec("insert into POSS select 'x' AS X, t.K, t.V from POSS t where t.X = 'z'")
	if r.Affected != 2 {
		t.Fatalf("affected=%d want 2", r.Affected)
	}
	res := db.MustExec("SELECT K, V FROM POSS WHERE X = 'x' ORDER BY K")
	if len(res.Rows) != 2 || res.Rows[0][1] != "v" || res.Rows[1][1] != "w" {
		t.Errorf("step 1 copy wrong: %v", res.Rows)
	}
}

func TestPaperStep2Statement(t *testing.T) {
	// The Step-2 flooding insertion with OR and DISTINCT.
	db := newPoss(t)
	db.MustExec("INSERT INTO POSS VALUES ('z1','k1','v'), ('z2','k1','v'), ('z2','k1','w')")
	r := db.MustExec("insert into POSS select distinct 'xi' AS X, t.K, t.V from POSS t where t.X = 'z1' or t.X = 'z2'")
	if r.Affected != 2 { // (k1,v) deduplicated, (k1,w)
		t.Fatalf("affected=%d want 2", r.Affected)
	}
	res := db.MustExec("SELECT V FROM POSS WHERE X = 'xi' ORDER BY V")
	if len(res.Rows) != 2 || res.Rows[0][0] != "v" || res.Rows[1][0] != "w" {
		t.Errorf("step 2 flood wrong: %v", res.Rows)
	}
}

func TestIndexFastPathMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dbIdx := newPoss(t)
	dbScan := newPoss(t)
	dbIdx.MustExec("CREATE INDEX ix ON POSS (X)")
	var values []string
	for i := 0; i < 500; i++ {
		x := fmt.Sprintf("x%d", rng.Intn(10))
		k := fmt.Sprintf("k%d", rng.Intn(50))
		v := fmt.Sprintf("v%d", rng.Intn(3))
		values = append(values, fmt.Sprintf("('%s','%s','%s')", x, k, v))
	}
	stmt := "INSERT INTO POSS VALUES " + strings.Join(values, ", ")
	dbIdx.MustExec(stmt)
	dbScan.MustExec(stmt)
	for _, where := range []string{
		"X = 'x1'",
		"X = 'x1' OR X = 'x2'",
		"X = 'x0' OR X = 'x5' OR X = 'x9'",
		"X = 'missing'",
	} {
		a := dbIdx.MustExec("SELECT X, K, V FROM POSS WHERE " + where + " ORDER BY K")
		b := dbScan.MustExec("SELECT X, K, V FROM POSS WHERE " + where + " ORDER BY K")
		if len(a.Rows) != len(b.Rows) {
			t.Fatalf("where %q: index %d rows vs scan %d", where, len(a.Rows), len(b.Rows))
		}
	}
}

func TestIndexMaintainedOnInsert(t *testing.T) {
	db := newPoss(t)
	db.MustExec("CREATE INDEX ix ON POSS (X)")
	db.MustExec("INSERT INTO POSS VALUES ('a','k','v')")
	db.MustExec("INSERT INTO POSS SELECT 'b' AS X, t.K, t.V FROM POSS t WHERE t.X = 'a'")
	res := db.MustExec("SELECT K FROM POSS WHERE X = 'b'")
	if len(res.Rows) != 1 {
		t.Fatalf("index stale after insert-select: %v", res.Rows)
	}
}

func TestWhereOperators(t *testing.T) {
	db := newPoss(t)
	db.MustExec("INSERT INTO POSS VALUES ('a','k1','v'), ('a','k2','w'), ('b','k1','v')")
	cases := []struct {
		where string
		want  int
	}{
		{"X = 'a' AND V = 'v'", 1},
		{"X != 'a'", 1},
		{"X <> 'a'", 1},
		{"NOT X = 'a'", 1},
		{"(X = 'a' OR X = 'b') AND K = 'k1'", 2},
		{"X = K", 0},
		{"V = 'v' AND (K = 'k1' OR K = 'k2')", 2},
	}
	for _, c := range cases {
		res := db.MustExec("SELECT X FROM POSS WHERE " + c.where)
		if len(res.Rows) != c.want {
			t.Errorf("WHERE %s: got %d rows want %d", c.where, len(res.Rows), c.want)
		}
	}
}

func TestCount(t *testing.T) {
	db := newPoss(t)
	db.MustExec("INSERT INTO POSS VALUES ('a','k1','v'), ('b','k1','w')")
	res := db.MustExec("SELECT COUNT(*) FROM POSS WHERE X = 'a'")
	if res.Rows[0][0] != "1" {
		t.Errorf("count = %s want 1", res.Rows[0][0])
	}
	res = db.MustExec("SELECT COUNT(*) FROM POSS")
	if res.Rows[0][0] != "2" {
		t.Errorf("count = %s want 2", res.Rows[0][0])
	}
}

func TestDelete(t *testing.T) {
	db := newPoss(t)
	db.MustExec("CREATE INDEX ix ON POSS (X)")
	db.MustExec("INSERT INTO POSS VALUES ('a','k1','v'), ('b','k1','w'), ('a','k2','u')")
	r := db.MustExec("DELETE FROM POSS WHERE X = 'a'")
	if r.Affected != 2 {
		t.Fatalf("deleted %d want 2", r.Affected)
	}
	if db.NumRows("POSS") != 1 {
		t.Fatalf("rows left %d want 1", db.NumRows("POSS"))
	}
	// Index must be rebuilt.
	res := db.MustExec("SELECT X FROM POSS WHERE X = 'b'")
	if len(res.Rows) != 1 {
		t.Errorf("index stale after delete: %v", res.Rows)
	}
}

func TestDropTable(t *testing.T) {
	db := newPoss(t)
	db.MustExec("DROP TABLE POSS")
	if _, err := db.Exec("SELECT * FROM POSS"); err == nil {
		t.Error("select from dropped table must fail")
	}
}

func TestSelectStar(t *testing.T) {
	db := newPoss(t)
	db.MustExec("INSERT INTO POSS VALUES ('a','k','v')")
	res := db.MustExec("SELECT * FROM POSS")
	if len(res.Cols) != 3 || len(res.Rows) != 1 || res.Rows[0][2] != "v" {
		t.Errorf("select star wrong: %v %v", res.Cols, res.Rows)
	}
}

func TestQuotedEscapes(t *testing.T) {
	db := newPoss(t)
	db.MustExec("INSERT INTO POSS VALUES ('it''s','k','ship hull')")
	res := db.MustExec("SELECT X, V FROM POSS WHERE X = 'it''s'")
	if len(res.Rows) != 1 || res.Rows[0][1] != "ship hull" {
		t.Errorf("escape handling wrong: %v", res.Rows)
	}
}

func TestErrors(t *testing.T) {
	db := newPoss(t)
	bad := []string{
		"SELEC X FROM POSS",
		"SELECT X FROM NOPE",
		"SELECT NOPE FROM POSS",
		"INSERT INTO POSS VALUES ('a','b')", // arity
		"CREATE TABLE POSS (A VARCHAR)",     // duplicate
		"SELECT X FROM POSS WHERE X LIKE 'a'",
		"DELETE FROM POSS WHERE",
		"INSERT INTO POSS SELECT 'a' AS X FROM POSS t", // arity
		"SELECT X FROM POSS WHERE X = 'a' EXTRA",
	}
	for _, s := range bad {
		if _, err := db.Exec(s); err == nil {
			t.Errorf("statement %q should fail", s)
		}
	}
}

func TestOrderByDesc(t *testing.T) {
	db := newPoss(t)
	db.MustExec("INSERT INTO POSS VALUES ('a','1','v'), ('b','2','v'), ('c','3','v')")
	res := db.MustExec("SELECT K FROM POSS ORDER BY K DESC")
	if res.Rows[0][0] != "3" || res.Rows[2][0] != "1" {
		t.Errorf("order by desc wrong: %v", res.Rows)
	}
}

func TestDistinctWithoutInsert(t *testing.T) {
	db := newPoss(t)
	db.MustExec("INSERT INTO POSS VALUES ('a','k','v'), ('a','k','v'), ('a','k','w')")
	res := db.MustExec("SELECT DISTINCT X, K, V FROM POSS")
	if len(res.Rows) != 2 {
		t.Errorf("distinct rows = %d want 2", len(res.Rows))
	}
}
