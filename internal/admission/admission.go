// Package admission is trustd's overload valve: a per-class concurrency
// limiter with a bounded FIFO wait queue and a queue-wait deadline. One
// Gate guards one request class (trustd keeps one for reads and one for
// mutations); a request either gets a slot immediately, waits its turn in
// the queue, or is shed with a computed Retry-After hint the HTTP layer
// turns into a 429.
//
// Shedding early is the point: an unbounded server accepts every
// connection, piles up goroutines, and slows EVERY request down until
// timeouts fire at random. A bounded gate keeps the work in flight
// constant, bounds queue memory, and converts overload into a fast,
// explicit, retryable signal — the client knows within a queue-timeout
// whether it should back off.
//
// All counters are deterministic (no wall clocks): admitted, queued,
// shed, canceled, and the high-water queue depth, so overload tests and
// the loadgen SLO gate can assert exact conservation —
//
//	Admitted + Shed + Canceled == every Acquire call that returned.
//
// A Gate is safe for concurrent use.
package admission

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Config bounds one Gate.
type Config struct {
	// MaxConcurrent is the number of requests admitted simultaneously.
	// Zero or negative disables limiting: every Acquire admits at once
	// (the queue and its deadline are then never used).
	MaxConcurrent int
	// MaxQueue is how many requests may wait for a slot beyond the
	// MaxConcurrent in flight. Zero or negative means no waiting at all:
	// with every slot busy, Acquire sheds immediately.
	MaxQueue int
	// QueueTimeout bounds one request's wait in the queue; waiting past
	// it sheds. Zero or negative leaves the wait bounded only by the
	// request context. A queue deadline keeps shed latency predictable:
	// the client learns to back off within QueueTimeout instead of
	// burning its whole request budget in line.
	QueueTimeout time.Duration
}

// ErrShed is the base error of every load-shedding rejection (queue full
// or queue-wait deadline). The HTTP layer maps it to 429 Too Many
// Requests; a caller context expiring in the queue is NOT a shed — it
// surfaces as the context's own error.
var ErrShed = errors.New("admission: shed")

// ShedError is a load-shedding rejection: the queue was full, or the
// queue-wait deadline passed. It wraps ErrShed.
type ShedError struct {
	// Reason distinguishes the two shed paths: "queue full" (instant
	// overflow) and "queue timeout" (waited QueueTimeout without a slot).
	Reason string
	// RetryAfter is the computed back-off hint: roughly how long the
	// current queue needs to drain, derived from queue depth and slot
	// count (deterministic — no wall clocks, no rate estimation).
	RetryAfter time.Duration
}

// Error describes the shed request and the queue state that caused it.
func (e *ShedError) Error() string {
	return fmt.Sprintf("admission: shed (%s), retry after %s", e.Reason, e.RetryAfter)
}

// Unwrap makes errors.Is(err, ErrShed) match every shed decision.
func (e *ShedError) Unwrap() error { return ErrShed }

// Stats are one Gate's deterministic counters since creation.
type Stats struct {
	Admitted      uint64 // Acquire calls that got a slot (immediately or from the queue)
	Queued        uint64 // Acquire calls that waited in the queue (admitted or not)
	Shed          uint64 // Acquire calls rejected: queue full or queue-wait deadline
	Canceled      uint64 // Acquire calls whose caller context expired while queued
	MaxQueueDepth int    // high-water mark of the wait queue
	InFlight      int    // currently admitted
	QueueDepth    int    // currently waiting
}

// waiter is one queued Acquire. granted flips under the gate mutex when a
// release hands the waiter its slot; the channel close wakes it.
type waiter struct {
	ch      chan struct{}
	granted bool
}

// Gate is one request class's admission valve. The zero value is not
// usable; construct with New. A nil *Gate admits everything and counts
// nothing, so optional gating needs no branches at call sites.
type Gate struct {
	cfg Config

	mu       sync.Mutex
	inflight int
	queue    []*waiter // FIFO; head at index 0
	stats    Stats
}

// New returns a Gate enforcing cfg.
func New(cfg Config) *Gate { return &Gate{cfg: cfg} }

// Acquire claims a slot, waiting in the bounded FIFO queue when all slots
// are busy. On success it returns the release function, which MUST be
// called exactly once when the request finishes. On failure the error is
// a *ShedError (queue full or queue-wait deadline; wraps ErrShed) or the
// context's error if ctx expired while waiting.
func (g *Gate) Acquire(ctx context.Context) (release func(), err error) {
	if g == nil {
		return func() {}, nil
	}
	g.mu.Lock()
	if g.cfg.MaxConcurrent <= 0 || g.inflight < g.cfg.MaxConcurrent {
		g.inflight++
		g.stats.Admitted++
		g.mu.Unlock()
		return g.release, nil
	}
	if len(g.queue) >= g.cfg.MaxQueue {
		g.stats.Shed++
		serr := &ShedError{Reason: "queue full", RetryAfter: g.retryAfterLocked()}
		g.mu.Unlock()
		return nil, serr
	}
	w := &waiter{ch: make(chan struct{})}
	g.queue = append(g.queue, w)
	g.stats.Queued++
	if len(g.queue) > g.stats.MaxQueueDepth {
		g.stats.MaxQueueDepth = len(g.queue)
	}
	g.mu.Unlock()

	var timeout <-chan time.Time
	if g.cfg.QueueTimeout > 0 {
		t := time.NewTimer(g.cfg.QueueTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case <-w.ch:
		g.mu.Lock()
		g.stats.Admitted++
		g.mu.Unlock()
		return g.release, nil
	case <-timeout:
		if err := g.abandon(w, true); err != nil {
			return nil, err
		}
		// The grant raced the timer and won: the slot is ours after all.
		return g.release, nil
	case <-ctx.Done():
		if err := g.abandon(w, false); err != nil {
			return nil, ctx.Err()
		}
		return g.release, nil
	}
}

// abandon withdraws a waiter that stopped waiting (timeout or context).
// If the grant already happened the withdrawal loses the race: abandon
// returns nil and the caller proceeds as admitted. Otherwise the waiter
// is removed from the queue and the call is counted as shed (timeout) or
// canceled (context); for timeouts the returned *ShedError carries the
// Retry-After hint.
func (g *Gate) abandon(w *waiter, timedOut bool) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if w.granted {
		g.stats.Admitted++
		return nil
	}
	for i, q := range g.queue {
		if q == w {
			g.queue = append(g.queue[:i], g.queue[i+1:]...)
			break
		}
	}
	if timedOut {
		g.stats.Shed++
		return &ShedError{Reason: "queue timeout", RetryAfter: g.retryAfterLocked()}
	}
	g.stats.Canceled++
	return errors.New("admission: context expired while queued") // caller substitutes ctx.Err()
}

// release frees one slot, handing it to the oldest waiter if any.
func (g *Gate) release() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.queue) > 0 {
		w := g.queue[0]
		g.queue = g.queue[1:]
		w.granted = true
		close(w.ch) // slot transfers: inflight stays
		return
	}
	g.inflight--
}

// retryAfterLocked computes the shed back-off hint from current state:
// one second per full queue's worth of work ahead, so a deeper queue asks
// for a longer back-off. Deterministic — derived from counts only — and
// capped so a pathological queue never asks a client to sleep forever.
func (g *Gate) retryAfterLocked() time.Duration {
	slots := g.cfg.MaxConcurrent
	if slots < 1 {
		slots = 1
	}
	secs := 1 + len(g.queue)/slots
	if secs > 8 {
		secs = 8
	}
	return time.Duration(secs) * time.Second
}

// Stats returns a snapshot of the gate's counters. A nil Gate reports
// zeros.
func (g *Gate) Stats() Stats {
	if g == nil {
		return Stats{}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	s := g.stats
	s.InFlight = g.inflight
	s.QueueDepth = len(g.queue)
	return s
}
