package admission

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestUnlimited: MaxConcurrent <= 0 admits everything immediately.
func TestUnlimited(t *testing.T) {
	g := New(Config{})
	var releases []func()
	for i := 0; i < 100; i++ {
		rel, err := g.Acquire(context.Background())
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		releases = append(releases, rel)
	}
	s := g.Stats()
	if s.Admitted != 100 || s.Shed != 0 || s.Queued != 0 {
		t.Fatalf("stats = %+v, want 100 admitted, 0 shed, 0 queued", s)
	}
	if s.InFlight != 100 {
		t.Fatalf("inflight = %d, want 100", s.InFlight)
	}
	for _, rel := range releases {
		rel()
	}
	if got := g.Stats().InFlight; got != 0 {
		t.Fatalf("inflight after release = %d, want 0", got)
	}
}

// TestNilGate: a nil *Gate admits and counts nothing.
func TestNilGate(t *testing.T) {
	var g *Gate
	rel, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("nil gate acquire: %v", err)
	}
	rel()
	if s := g.Stats(); s != (Stats{}) {
		t.Fatalf("nil gate stats = %+v, want zero", s)
	}
}

// TestImmediateShed: with no queue, a busy gate sheds at once with a
// Retry-After hint, and the shed error unwraps to ErrShed.
func TestImmediateShed(t *testing.T) {
	g := New(Config{MaxConcurrent: 1, MaxQueue: 0})
	rel, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	_, err = g.Acquire(context.Background())
	if !errors.Is(err, ErrShed) {
		t.Fatalf("second acquire err = %v, want ErrShed", err)
	}
	var se *ShedError
	if !errors.As(err, &se) {
		t.Fatalf("second acquire err = %T, want *ShedError", err)
	}
	if se.Reason != "queue full" {
		t.Fatalf("reason = %q, want queue full", se.Reason)
	}
	if se.RetryAfter < time.Second {
		t.Fatalf("retry-after = %v, want >= 1s", se.RetryAfter)
	}
	rel()
	s := g.Stats()
	if s.Admitted != 1 || s.Shed != 1 {
		t.Fatalf("stats = %+v, want 1 admitted / 1 shed", s)
	}
}

// TestFIFOHandoff: queued waiters are granted strictly in arrival order,
// and a slot handoff keeps inflight constant.
func TestFIFOHandoff(t *testing.T) {
	g := New(Config{MaxConcurrent: 1, MaxQueue: 4})
	rel0, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("seed acquire: %v", err)
	}

	const n = 3
	order := make(chan int, n)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		// Serialize enqueue order: wait until waiter i is actually queued
		// before launching i+1, so FIFO arrival order is deterministic.
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i == 0 {
				<-start
			}
			rel, err := g.Acquire(context.Background())
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			order <- i
			rel()
		}(i)
		if i == 0 {
			close(start)
		}
		waitFor(t, func() bool { return g.Stats().QueueDepth == i+1 })
	}

	rel0()
	wg.Wait()
	close(order)
	want := 0
	for got := range order {
		if got != want {
			t.Fatalf("grant order: got waiter %d, want %d", got, want)
		}
		want++
	}
	s := g.Stats()
	if s.Admitted != uint64(1+n) || s.Queued != n || s.Shed != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MaxQueueDepth != n {
		t.Fatalf("max queue depth = %d, want %d", s.MaxQueueDepth, n)
	}
	if s.InFlight != 0 || s.QueueDepth != 0 {
		t.Fatalf("gate not drained: %+v", s)
	}
}

// TestQueueTimeout: a waiter that outlives QueueTimeout is shed with the
// "queue timeout" reason.
func TestQueueTimeout(t *testing.T) {
	g := New(Config{MaxConcurrent: 1, MaxQueue: 2, QueueTimeout: 20 * time.Millisecond})
	rel, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("seed acquire: %v", err)
	}
	defer rel()
	_, err = g.Acquire(context.Background())
	var se *ShedError
	if !errors.As(err, &se) || se.Reason != "queue timeout" {
		t.Fatalf("err = %v, want queue-timeout ShedError", err)
	}
	s := g.Stats()
	if s.Shed != 1 || s.Queued != 1 || s.QueueDepth != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestContextCancel: a caller context expiring in the queue surfaces the
// context error (not a shed) and counts as canceled.
func TestContextCancel(t *testing.T) {
	g := New(Config{MaxConcurrent: 1, MaxQueue: 2})
	rel, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("seed acquire: %v", err)
	}
	defer rel()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err = g.Acquire(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if errors.Is(err, ErrShed) {
		t.Fatalf("context expiry must not be a shed: %v", err)
	}
	s := g.Stats()
	if s.Canceled != 1 || s.Shed != 0 {
		t.Fatalf("stats = %+v, want 1 canceled / 0 shed", s)
	}
}

// TestRetryAfterScalesWithQueue: a deeper queue asks for a longer
// back-off, capped at 8s.
func TestRetryAfterScalesWithQueue(t *testing.T) {
	g := New(Config{MaxConcurrent: 1, MaxQueue: 20})
	rel, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("seed acquire: %v", err)
	}
	defer rel()
	for i := 0; i < 20; i++ {
		go g.Acquire(context.Background()) //nolint:errcheck
	}
	waitFor(t, func() bool { return g.Stats().QueueDepth == 20 })
	_, err = g.Acquire(context.Background())
	var se *ShedError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want ShedError", err)
	}
	if se.RetryAfter != 8*time.Second {
		t.Fatalf("retry-after = %v, want capped 8s (queue depth 20, 1 slot)", se.RetryAfter)
	}
}

// TestConservationHammer: many goroutines race acquire/release/cancel
// against a tiny gate; afterwards the counters must account for every
// single call — Admitted + Shed + Canceled == calls — and the gate must
// be fully drained. Run with -race.
func TestConservationHammer(t *testing.T) {
	g := New(Config{MaxConcurrent: 2, MaxQueue: 4, QueueTimeout: time.Millisecond})
	const goroutines = 16
	const perG = 200
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				if (i+j)%3 == 0 {
					// A third of callers carry a deadline that races the
					// queue timeout, exercising the grant/abandon races.
					ctx, cancel = context.WithTimeout(ctx, time.Duration(j%3)*time.Millisecond)
				}
				rel, err := g.Acquire(ctx)
				if err == nil {
					rel()
				}
				cancel()
			}
		}(i)
	}
	wg.Wait()
	s := g.Stats()
	total := s.Admitted + s.Shed + s.Canceled
	if total != goroutines*perG {
		t.Fatalf("conservation violated: admitted %d + shed %d + canceled %d = %d, want %d",
			s.Admitted, s.Shed, s.Canceled, total, goroutines*perG)
	}
	if s.InFlight != 0 || s.QueueDepth != 0 {
		t.Fatalf("gate not drained: %+v", s)
	}
	if s.MaxQueueDepth > 4 {
		t.Fatalf("queue bound violated: max depth %d > 4", s.MaxQueueDepth)
	}
}

// waitFor polls cond until true or the test deadline budget runs out.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(100 * time.Microsecond)
	}
}
