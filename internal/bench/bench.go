// Package bench is the experiment harness regenerating the figures of the
// paper's evaluation (Section 5, Appendix B.5): it builds the workloads,
// times the Resolution Algorithm (RA), the logic-programming baseline (the
// DLV substitute), and the bulk SQL path, and renders the series the paper
// plots. Absolute numbers differ from the paper's 2009 Java/SQL-Server
// testbed; the shapes (exponential LP vs quasi-linear RA, linear bulk
// scaling, quadratic worst case) are what the harness demonstrates.
package bench

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strings"
	"time"

	"trustmap/internal/bulk"
	"trustmap/internal/engine"
	"trustmap/internal/lp"
	"trustmap/internal/resolve"
	"trustmap/internal/tn"
	"trustmap/internal/workload"
)

// Point is one measurement: problem size (the paper's x axis) and seconds.
type Point struct {
	X       int
	Seconds float64
	Note    string // e.g. "DNF (budget)" when the LP search is cut off
}

// Series is a named measurement curve.
type Series struct {
	Name   string
	XLabel string
	Points []Point
}

// Fprint renders the series as an aligned two-column table.
func (s Series) Fprint(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", s.Name)
	fmt.Fprintf(w, "%-14s %-14s %s\n", s.XLabel, "time[sec]", "note")
	for _, p := range s.Points {
		note := p.Note
		sec := fmt.Sprintf("%.6f", p.Seconds)
		if note != "" && p.Seconds == 0 {
			sec = "-"
		}
		fmt.Fprintf(w, "%-14d %-14s %s\n", p.X, sec, note)
	}
}

// String renders the series as text.
func (s Series) String() string {
	var b strings.Builder
	s.Fprint(&b)
	return b.String()
}

// timeIt measures f averaged over reps runs.
func timeIt(reps int, f func()) float64 {
	if reps < 1 {
		reps = 1
	}
	start := time.Now()
	for i := 0; i < reps; i++ {
		f()
	}
	return time.Since(start).Seconds() / float64(reps)
}

// LPBudget caps the stable-model search per instance; beyond it the point
// is reported as DNF, mirroring the cliff in the paper's Figure 5.
const LPBudget = 1 << 20

// solveLP translates a BTN and enumerates its stable models, returning the
// time and whether the budget was exhausted.
func solveLP(n *tn.Network) (float64, bool) {
	prog, _ := lp.TranslateBinary(n, nil)
	start := time.Now()
	_, err := lp.StableModels(prog, lp.Options{Budget: LPBudget})
	return time.Since(start).Seconds(), err == lp.ErrBudget
}

// Fig5 measures the logic-programming baseline on chains of k oscillators
// (network size |U|+|E| = 8k), reproducing the exponential curve of
// Figure 5.
func Fig5(ks []int) Series {
	s := Series{Name: "Fig 5: LP solver on oscillator chains", XLabel: "size(|U|+|E|)"}
	for _, k := range ks {
		n := workload.OscillatorClusters(k)
		sec, dnf := solveLP(n)
		p := Point{X: n.Size(), Seconds: sec}
		if dnf {
			p.Note = "DNF (budget)"
		}
		s.Points = append(s.Points, p)
	}
	return s
}

// Fig8aRA measures the Resolution Algorithm on oscillator chains
// (Figure 8a, "network with many cycles").
func Fig8aRA(ks []int, reps int) Series {
	s := Series{Name: "Fig 8a: RA on oscillator chains", XLabel: "size(|U|+|E|)"}
	for _, k := range ks {
		n := workload.OscillatorClusters(k)
		sec := timeIt(reps, func() { resolve.Resolve(n) })
		s.Points = append(s.Points, Point{X: n.Size(), Seconds: sec})
	}
	return s
}

// Fig8aLP is the baseline curve of Figure 8a.
func Fig8aLP(ks []int) Series {
	s := Fig5(ks)
	s.Name = "Fig 8a: LP solver on oscillator chains"
	return s
}

// Fig8bRA measures the Resolution Algorithm on scale-free networks (the
// web-crawl substitute of Figure 8b). Sizes are user counts; edge count is
// about 3x users.
func Fig8bRA(users []int, reps int, seed int64) Series {
	s := Series{Name: "Fig 8b: RA on power-law networks", XLabel: "size(|U|+|E|)"}
	for _, u := range users {
		n := workload.PowerLaw(rand.New(rand.NewSource(seed)), u, 3, 0.1, []tn.Value{"v", "w", "u"})
		b := tn.Binarize(n)
		sec := timeIt(reps, func() { resolve.Resolve(b) })
		s.Points = append(s.Points, Point{X: n.Size(), Seconds: sec})
	}
	return s
}

// Fig8bLP is the baseline on the scale-free data set.
func Fig8bLP(users []int, seed int64) Series {
	s := Series{Name: "Fig 8b: LP solver on power-law networks", XLabel: "size(|U|+|E|)"}
	for _, u := range users {
		n := workload.PowerLaw(rand.New(rand.NewSource(seed)), u, 3, 0.1, []tn.Value{"v", "w", "u"})
		b := tn.Binarize(n)
		sec, dnf := solveLP(b)
		p := Point{X: n.Size(), Seconds: sec}
		if dnf {
			p.Note = "DNF (budget)"
		}
		s.Points = append(s.Points, p)
	}
	return s
}

// Fig8c measures bulk SQL resolution over the Figure 19 network with a
// growing number of objects (half of them conflicting).
func Fig8c(objectCounts []int, seed int64) Series {
	s := Series{Name: "Fig 8c: bulk SQL resolution (7 users, 12 mappings)", XLabel: "objects"}
	net, roots := workload.Fig19()
	b := tn.Binarize(net)
	for _, count := range objectCounts {
		objs := workload.BulkObjects(rand.New(rand.NewSource(seed)), roots, count)
		plan, err := bulk.NewPlan(b)
		if err != nil {
			panic(err)
		}
		store := bulk.NewStore(plan)
		if err := store.LoadObjects(objs); err != nil {
			panic(err)
		}
		start := time.Now()
		if err := store.Resolve(); err != nil {
			panic(err)
		}
		s.Points = append(s.Points, Point{X: count, Seconds: time.Since(start).Seconds()})
	}
	return s
}

// Fig8cLP is the per-object logic-programming baseline of Figure 8c: one
// LP per object, exponential in the number of conflicting objects.
func Fig8cLP(objectCounts []int, seed int64) Series {
	s := Series{Name: "Fig 8c: LP solver per object", XLabel: "objects"}
	net, roots := workload.Fig19()
	b := tn.Binarize(net)
	for _, count := range objectCounts {
		objs := workload.BulkObjects(rand.New(rand.NewSource(seed)), roots, count)
		start := time.Now()
		dnf := false
		// Sorted iteration keeps the budget cutoff point deterministic.
		for _, k := range workload.ObjectKeys(objs) {
			per := b.Clone()
			for x, v := range objs[k] {
				per.SetExplicit(x, v)
			}
			prog, _ := lp.TranslateBinary(per, nil)
			if _, err := lp.StableModels(prog, lp.Options{Budget: LPBudget}); err == lp.ErrBudget {
				dnf = true
				break
			}
		}
		p := Point{X: count, Seconds: time.Since(start).Seconds()}
		if dnf {
			p.Note = "DNF (budget)"
		}
		s.Points = append(s.Points, p)
	}
	return s
}

// BulkWorkload builds the bulk comparison workload: a binarized power-law
// trust network with `users` users and per-object root beliefs for
// `objects` objects (half of them conflicting), deterministic in seed.
func BulkWorkload(users, objects int, seed int64) (*tn.Network, map[string]map[int]tn.Value) {
	n := workload.PowerLaw(rand.New(rand.NewSource(seed)), users, 3, 0.1, []tn.Value{"v", "w", "u", "z"})
	bin := tn.Binarize(n)
	var roots []int
	for x := 0; x < bin.NumUsers(); x++ {
		if bin.HasExplicit(x) {
			roots = append(roots, x)
		}
	}
	objs := workload.BulkObjects(rand.New(rand.NewSource(seed+1)), roots, objects)
	return bin, objs
}

// ClusteredBulkWorkload builds the signature-clustered bulk workload: a
// binarized power-law trust network with `users` users and coarse trust
// tiers (frequent priority ties flood large root sets, the support-rich
// regime), plus `objects` per-object root-belief maps drawn from
// `distinct` prototype assignments with a zipf-like skew, deterministic in
// seed. Objects sharing a prototype share the belief map, as a community
// database serving mostly-uncontested objects (or repeating a handful of
// conflict patterns) would.
func ClusteredBulkWorkload(users, objects, distinct int, seed int64) (*tn.Network, map[string]map[int]tn.Value) {
	n := workload.PowerLawTiered(rand.New(rand.NewSource(seed)), users, 3, 3, 0.1, []tn.Value{"v", "w", "u", "z"})
	bin := tn.Binarize(n)
	var roots []int
	for x := 0; x < bin.NumUsers(); x++ {
		if bin.HasExplicit(x) {
			roots = append(roots, x)
		}
	}
	protos := workload.BulkObjects(rand.New(rand.NewSource(seed+1)), roots, distinct)
	keys := workload.ObjectKeys(protos)
	rng := rand.New(rand.NewSource(seed + 2))
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(len(keys)-1))
	objs := make(map[string]map[int]tn.Value, objects)
	for i := 0; i < objects; i++ {
		objs[fmt.Sprintf("obj%d", i)] = protos[keys[zipf.Uint64()]]
	}
	return bin, objs
}

// AllDistinctBulkWorkload perturbs one root per object with a unique
// value, so every object carries its own signature: the adversarial case
// for signature deduplication.
func AllDistinctBulkWorkload(users, objects int, seed int64) (*tn.Network, map[string]map[int]tn.Value) {
	bin, objs := BulkWorkload(users, objects, seed)
	root := -1
	for x := 0; x < bin.NumUsers(); x++ {
		if bin.HasExplicit(x) {
			root = x
			break
		}
	}
	for i, k := range workload.ObjectKeys(objs) {
		objs[k][root] = tn.Value(fmt.Sprintf("uniq%d", i))
	}
	return bin, objs
}

// DedupPoint is one clustered-workload measurement: wall time with and
// without signature dedup for a cold artifact, plus a second dedup batch
// against the same artifact showing the cross-batch cache (the Session
// steady state — WarmStats.CacheHits over DistinctSignatures is the hit
// rate).
type DedupPoint struct {
	Objects       int
	SecsDedup     float64 // cold: every distinct signature resolved here
	SecsNoDedup   float64
	SecsDedupWarm float64 // repeat batch: signatures served from the cache
	Stats         engine.DedupStats
	WarmStats     engine.DedupStats
}

// BulkDedup contrasts signature-deduplicated resolution against the
// per-object scan on clustered workloads of growing object count (the
// network and the `distinct` signature prototypes stay fixed). Artifacts
// are compiled fresh per point, the dedup batch runs twice against the
// same artifact: cold (every distinct signature resolved in the measured
// call) and warm (served from the cross-batch signature cache).
func BulkDedup(users int, objectCounts []int, distinct, workers int, seed int64) ([]Series, []DedupPoint) {
	ded := Series{Name: fmt.Sprintf("bulk: engine + signature dedup (%d signatures)", distinct), XLabel: "objects"}
	nod := Series{Name: "bulk: engine, dedup disabled", XLabel: "objects"}
	warm := Series{Name: "bulk: engine + dedup, repeat batch (warm signature cache)", XLabel: "objects"}
	var points []DedupPoint
	for _, count := range objectCounts {
		bin, objs := ClusteredBulkWorkload(users, count, distinct, seed)
		p := DedupPoint{Objects: count}
		c, err := engine.Compile(bin)
		if err != nil {
			panic(err)
		}
		start := time.Now()
		r, err := c.Resolve(context.Background(), objs, engine.Options{Workers: workers})
		if err != nil {
			panic(err)
		}
		p.SecsDedup = time.Since(start).Seconds()
		p.Stats = r.Dedup()
		start = time.Now()
		if r, err = c.Resolve(context.Background(), objs, engine.Options{Workers: workers}); err != nil {
			panic(err)
		}
		p.SecsDedupWarm = time.Since(start).Seconds()
		p.WarmStats = r.Dedup()
		cn, err := engine.Compile(bin)
		if err != nil {
			panic(err)
		}
		start = time.Now()
		if _, err := cn.Resolve(context.Background(), objs, engine.Options{Workers: workers, DisableDedup: true}); err != nil {
			panic(err)
		}
		p.SecsNoDedup = time.Since(start).Seconds()
		ded.Points = append(ded.Points, Point{X: count, Seconds: p.SecsDedup})
		warm.Points = append(warm.Points, Point{X: count, Seconds: p.SecsDedupWarm})
		nod.Points = append(nod.Points, Point{X: count, Seconds: p.SecsNoDedup})
		points = append(points, p)
	}
	return []Series{ded, warm, nod}, points
}

// BulkSeqVsPar contrasts the three bulk execution strategies on the same
// power-law workload: the sequential SQL path of Section 4, the compiled
// engine on one worker, and the compiled engine on `workers` workers.
// Engine timings include per-call compilation, mirroring the SQL path
// which re-plans per call.
func BulkSeqVsPar(users int, objectCounts []int, workers int, seed int64) []Series {
	sql := Series{Name: "bulk: sequential SQL path", XLabel: "objects"}
	seq := Series{Name: "bulk: compiled engine, 1 worker", XLabel: "objects"}
	par := Series{Name: fmt.Sprintf("bulk: compiled engine, %d workers", workers), XLabel: "objects"}
	for _, count := range objectCounts {
		bin, objs := BulkWorkload(users, count, seed)
		start := time.Now()
		plan, err := bulk.NewPlan(bin)
		if err != nil {
			panic(err)
		}
		store := bulk.NewStore(plan)
		if err := store.LoadObjects(objs); err != nil {
			panic(err)
		}
		if err := store.Resolve(); err != nil {
			panic(err)
		}
		sql.Points = append(sql.Points, Point{X: count, Seconds: time.Since(start).Seconds()})

		for _, run := range []struct {
			s *Series
			w int
		}{{&seq, 1}, {&par, workers}} {
			start = time.Now()
			c, err := engine.Compile(bin)
			if err != nil {
				panic(err)
			}
			if _, err := c.Resolve(context.Background(), objs, engine.Options{Workers: run.w}); err != nil {
				panic(err)
			}
			run.s.Points = append(run.s.Points, Point{X: count, Seconds: time.Since(start).Seconds()})
		}
	}
	return []Series{sql, seq, par}
}

// IncrementalUpdate contrasts the two ways of serving a mutate-then-
// resolve workload across network sizes: recompiling the engine artifact
// from scratch after every mutation versus folding the mutation in through
// the delta path (engine.CompiledNetwork.Apply). Each mutation revokes or
// re-grants one leaf mapping — the small-dirty-region case a live
// community database hits constantly. Times are per mutation.
func IncrementalUpdate(userCounts []int, mutsPer int, seed int64) []Series {
	recompile := Series{Name: "incremental: full recompile per mutation", XLabel: "size(|U|+|E|)"}
	apply := Series{Name: "incremental: delta apply per mutation", XLabel: "size(|U|+|E|)"}
	for _, users := range userCounts {
		base, _ := BulkWorkload(users, 1, seed)
		parent, child, prio := LeafEdge(base)
		size := base.Size()

		n := base.Clone()
		start := time.Now()
		for i := 0; i < mutsPer; i++ {
			toggleMapping(n, i, parent, child, prio)
			if _, err := engine.Compile(n); err != nil {
				panic(err)
			}
		}
		recompile.Points = append(recompile.Points,
			Point{X: size, Seconds: time.Since(start).Seconds() / float64(mutsPer)})

		n = base.Clone()
		n.EnableJournal()
		c, err := engine.Compile(n)
		if err != nil {
			panic(err)
		}
		start = time.Now()
		for i := 0; i < mutsPer; i++ {
			toggleMapping(n, i, parent, child, prio)
			if c, _, err = c.Apply(n.DrainJournal(), engine.ApplyOptions{}); err != nil {
				panic(err)
			}
		}
		apply.Points = append(apply.Points,
			Point{X: size, Seconds: time.Since(start).Seconds() / float64(mutsPer)})
	}
	return []Series{recompile, apply}
}

// toggleMapping alternately revokes and re-grants one mapping.
func toggleMapping(n *tn.Network, i, parent, child, prio int) {
	if i%2 == 0 {
		n.RemoveMapping(parent, child)
	} else {
		n.AddMapping(parent, child, prio)
	}
}

// LeafEdge finds a mapping whose child has no outgoing edges, so toggling
// it dirties the smallest possible region: the canonical small-mutation
// site shared by the incremental series and BenchmarkIncrementalUpdate.
func LeafEdge(bin *tn.Network) (parent, child, prio int) {
	g := bin.Graph()
	for x := 0; x < bin.NumUsers(); x++ {
		if len(g.Out(x)) == 0 && len(bin.In(x)) > 0 {
			m := bin.In(x)[0]
			return m.Parent, x, m.Priority
		}
	}
	panic("bench: workload has no leaf with incoming mappings")
}

// Fig15 measures the Resolution Algorithm on the nested-SCC worst case
// (Figure 14a / Figure 15): quadratic in the network size.
func Fig15(ks []int, reps int) Series {
	s := Series{Name: "Fig 15: RA on nested-SCC worst case", XLabel: "size(|U|+|E|)"}
	for _, k := range ks {
		n := workload.NestedSCC(k)
		sec := timeIt(reps, func() { resolve.Resolve(n) })
		s.Points = append(s.Points, Point{X: n.Size(), Seconds: sec})
	}
	return s
}

// FitSlope estimates the log-log slope between the first and last timed
// points of a series: ~1 for linear scaling, ~2 for quadratic.
func FitSlope(s Series) float64 {
	var pts []Point
	for _, p := range s.Points {
		if p.Seconds > 0 && p.Note == "" {
			pts = append(pts, p)
		}
	}
	if len(pts) < 2 {
		return 0
	}
	a, b := pts[0], pts[len(pts)-1]
	return math.Log(b.Seconds/a.Seconds) / math.Log(float64(b.X)/float64(a.X))
}
