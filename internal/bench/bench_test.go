package bench

import (
	"fmt"
	"strings"
	"testing"

	"trustmap/internal/tn"
	"trustmap/internal/workload"
)

func TestFig5SmokeAndShape(t *testing.T) {
	s := Fig5([]int{1, 2, 3, 4, 5, 6})
	if len(s.Points) != 6 {
		t.Fatalf("points=%d", len(s.Points))
	}
	// Exponential shape: each added oscillator roughly doubles the model
	// count; the last timed point must be much slower than the first.
	first, last := s.Points[0].Seconds, s.Points[len(s.Points)-1].Seconds
	if last < 4*first {
		t.Errorf("expected super-linear growth: first %.6fs last %.6fs", first, last)
	}
}

func TestFig8aRASmoke(t *testing.T) {
	s := Fig8aRA([]int{10, 100, 500}, 2)
	if len(s.Points) != 3 {
		t.Fatal("missing points")
	}
	for _, p := range s.Points {
		if p.Seconds <= 0 {
			t.Errorf("non-positive timing at %d", p.X)
		}
	}
}

func TestFig8bSmoke(t *testing.T) {
	ra := Fig8bRA([]int{100, 1000}, 2, 42)
	if len(ra.Points) != 2 {
		t.Fatal("missing RA points")
	}
	lps := Fig8bLP([]int{20}, 42)
	if len(lps.Points) != 1 {
		t.Fatal("missing LP point")
	}
}

func TestFig8cSmokeLinear(t *testing.T) {
	s := Fig8c([]int{100, 1000}, 7)
	if len(s.Points) != 2 {
		t.Fatal("missing points")
	}
	// Bulk resolution must be roughly linear in object count: 10x objects
	// should cost far less than 100x time.
	ratio := s.Points[1].Seconds / s.Points[0].Seconds
	if ratio > 100 {
		t.Errorf("bulk scaling looks super-linear: ratio %.1f for 10x objects", ratio)
	}
}

func TestFig15QuadraticShape(t *testing.T) {
	s := Fig15([]int{50, 100, 200, 400}, 2)
	slope := FitSlope(s)
	// The worst-case family must scale clearly super-linearly (the
	// theoretical slope is 2; allow measurement noise).
	if slope < 1.3 {
		t.Errorf("nested-SCC slope %.2f; expected clearly super-linear (~2)", slope)
	}
}

func TestBulkSeqVsParSmoke(t *testing.T) {
	series := BulkSeqVsPar(100, []int{20, 50}, 4, 11)
	if len(series) != 3 {
		t.Fatalf("series=%d want 3", len(series))
	}
	for _, s := range series {
		if len(s.Points) != 2 {
			t.Fatalf("%s: points=%d want 2", s.Name, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Seconds <= 0 {
				t.Errorf("%s: non-positive timing at %d", s.Name, p.X)
			}
		}
	}
}

func TestBulkDedupSmoke(t *testing.T) {
	series, points := BulkDedup(200, []int{50, 200}, 8, 1, 11)
	if len(series) != 3 || len(points) != 2 {
		t.Fatalf("series=%d points=%d want 3/2", len(series), len(points))
	}
	for _, p := range points {
		if p.SecsDedup <= 0 || p.SecsNoDedup <= 0 || p.SecsDedupWarm <= 0 {
			t.Errorf("non-positive timing at %d objects", p.Objects)
		}
		if p.Stats.Objects != p.Objects {
			t.Errorf("stats cover %d objects, want %d", p.Stats.Objects, p.Objects)
		}
		if p.Stats.DistinctSignatures <= 0 || p.Stats.DistinctSignatures > 8 {
			t.Errorf("distinct signatures %d, want 1..8", p.Stats.DistinctSignatures)
		}
		// The repeat batch must be served from the cross-batch cache.
		if p.WarmStats.CacheHits != p.WarmStats.DistinctSignatures || p.WarmStats.Resolved != 0 {
			t.Errorf("warm batch not cache-served: %+v", p.WarmStats)
		}
	}
}

func TestClusteredAndAllDistinctWorkloads(t *testing.T) {
	bin, objs := ClusteredBulkWorkload(100, 60, 5, 3)
	if bin == nil || len(objs) != 60 {
		t.Fatalf("clustered workload: %d objects", len(objs))
	}
	seen := map[string]bool{}
	for _, bs := range objs {
		seen[fmt.Sprintf("%p", bs)] = true // prototypes are shared by pointer
	}
	if len(seen) > 5 {
		t.Errorf("clustered workload has %d distinct prototypes, want <= 5", len(seen))
	}
	_, dobjs := AllDistinctBulkWorkload(100, 40, 3)
	vals := map[tn.Value]bool{}
	for _, k := range workload.ObjectKeys(dobjs) {
		for _, v := range dobjs[k] {
			if strings.HasPrefix(string(v), "uniq") {
				vals[v] = true
			}
		}
	}
	if len(vals) != 40 {
		t.Errorf("all-distinct workload has %d unique markers, want 40", len(vals))
	}
}

func TestSeriesFormatting(t *testing.T) {
	s := Series{Name: "test", XLabel: "n", Points: []Point{{X: 10, Seconds: 0.5}, {X: 20, Note: "DNF (budget)"}}}
	out := s.String()
	if !strings.Contains(out, "# test") || !strings.Contains(out, "DNF") {
		t.Errorf("format wrong:\n%s", out)
	}
}

func TestFitSlope(t *testing.T) {
	lin := Series{Points: []Point{{X: 10, Seconds: 0.1}, {X: 100, Seconds: 1.0}}}
	if s := FitSlope(lin); s < 0.9 || s > 1.1 {
		t.Errorf("linear slope=%f", s)
	}
	quad := Series{Points: []Point{{X: 10, Seconds: 0.1}, {X: 100, Seconds: 10}}}
	if s := FitSlope(quad); s < 1.9 || s > 2.1 {
		t.Errorf("quadratic slope=%f", s)
	}
	if FitSlope(Series{}) != 0 {
		t.Error("empty series slope must be 0")
	}
}
