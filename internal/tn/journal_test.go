package tn

import "testing"

// TestRemoveMapping covers revocation semantics: the mapping disappears
// from the sorted incoming list, the edge count drops, and removing an
// absent mapping is a reported no-op.
func TestRemoveMapping(t *testing.T) {
	n := New()
	a, b, c := n.AddUser("a"), n.AddUser("b"), n.AddUser("c")
	n.AddMapping(a, c, 2)
	n.AddMapping(b, c, 1)
	if !n.RemoveMapping(b, c) {
		t.Fatal("existing mapping not removed")
	}
	if n.NumMappings() != 1 || len(n.In(c)) != 1 || n.In(c)[0].Parent != a {
		t.Fatalf("after removal: in(c)=%v, edges=%d", n.In(c), n.NumMappings())
	}
	if n.RemoveMapping(b, c) {
		t.Error("absent mapping reported removed")
	}
	if n.RemoveMapping(a, -1) || n.RemoveMapping(a, 99) {
		t.Error("out-of-range child reported removed")
	}
	// Revoking the last incoming mapping re-roots c.
	if !n.RemoveMapping(a, c) || !n.IsRoot(c) {
		t.Error("removing the last mapping must re-root the child")
	}
}

// TestRemoveMappingPromotesPreferred checks the Section 2.2 promotion:
// revoking one of two mappings makes the survivor the preferred parent.
func TestRemoveMappingPromotesPreferred(t *testing.T) {
	n := New()
	a, b, c := n.AddUser("a"), n.AddUser("b"), n.AddUser("c")
	n.AddMapping(a, c, 2)
	n.AddMapping(b, c, 2) // tie: no preferred parent
	if _, ok := n.PreferredParent(c); ok {
		t.Fatal("tied priorities must have no preferred parent")
	}
	n.RemoveMapping(a, c)
	if p, ok := n.PreferredParent(c); !ok || p != b {
		t.Errorf("survivor not promoted: parent=%d ok=%v", p, ok)
	}
}

// TestSetMappingPriority checks re-prioritization keeps the incoming sort
// and flips the preferred parent.
func TestSetMappingPriority(t *testing.T) {
	n := New()
	a, b, c := n.AddUser("a"), n.AddUser("b"), n.AddUser("c")
	n.AddMapping(a, c, 2)
	n.AddMapping(b, c, 1)
	if p, _ := n.PreferredParent(c); p != a {
		t.Fatalf("preferred=%d want a", p)
	}
	if !n.SetMappingPriority(b, c, 5) {
		t.Fatal("existing mapping not re-prioritized")
	}
	if p, _ := n.PreferredParent(c); p != b {
		t.Errorf("preferred=%d want b after boost", p)
	}
	in := n.In(c)
	if len(in) != 2 || in[0].Parent != b || in[0].Priority != 5 || in[1].Parent != a {
		t.Errorf("incoming sort broken: %v", in)
	}
	if n.SetMappingPriority(a, -1, 3) || n.SetMappingPriority(n.AddUser("x"), c, 3) {
		t.Error("absent mapping reported re-prioritized")
	}
	if n.NumMappings() != 2 {
		t.Errorf("edges=%d want 2", n.NumMappings())
	}
}

// TestJournal checks that exactly the effective mutations are recorded,
// with old values filled, and that draining resets the journal.
func TestJournal(t *testing.T) {
	n := New()
	a := n.AddUser("a") // before EnableJournal: not recorded
	n.EnableJournal()
	b := n.AddUser("b")
	n.AddUser("b") // duplicate: no entry
	n.AddMapping(a, b, 3)
	n.SetExplicit(a, "v")
	n.SetExplicit(a, "v")         // same value: no entry
	n.SetMappingPriority(a, b, 3) // same priority: no entry
	n.SetMappingPriority(a, b, 7)
	n.RemoveMapping(a, b)
	n.SetExplicit(a, NoValue)
	j := n.DrainJournal()
	want := []Mutation{
		{Kind: MutAddUser, User: b},
		{Kind: MutAddMapping, Parent: a, Child: b, Priority: 3},
		{Kind: MutSetExplicit, User: a, Value: "v"},
		{Kind: MutSetPriority, Parent: a, Child: b, Priority: 7, OldPriority: 3},
		{Kind: MutRemoveMapping, Parent: a, Child: b, OldPriority: 7},
		{Kind: MutSetExplicit, User: a, OldValue: "v"},
	}
	if len(j) != len(want) {
		t.Fatalf("journal has %d entries, want %d: %+v", len(j), len(want), j)
	}
	for i := range want {
		if j[i] != want[i] {
			t.Errorf("journal[%d] = %+v, want %+v", i, j[i], want[i])
		}
	}
	if len(n.DrainJournal()) != 0 {
		t.Error("drain did not reset the journal")
	}
}

// TestVersion checks the version counter moves exactly on effective
// mutations, including through SetMappingPriority's internal re-insert.
func TestVersion(t *testing.T) {
	n := New()
	v0 := n.Version()
	a, b := n.AddUser("a"), n.AddUser("b")
	n.AddMapping(a, b, 1)
	if n.Version() != v0+3 {
		t.Errorf("version=%d want %d", n.Version(), v0+3)
	}
	n.SetMappingPriority(a, b, 9)
	if n.Version() != v0+4 {
		t.Errorf("priority change must bump version once, got %d", n.Version())
	}
	n.AddUser("a")            // no-op
	n.SetExplicit(b, NoValue) // no-op: already none
	if n.Version() != v0+4 {
		t.Errorf("no-ops must not bump the version, got %d", n.Version())
	}
	c := n.Clone()
	if c.Version() != n.Version() {
		t.Error("clone must carry the version")
	}
	if c.DisableJournal(); len(c.DrainJournal()) != 0 {
		t.Error("clone must not inherit the journal")
	}
}
