package tn

// This file implements an exact enumerator of stable solutions
// (Definition 2.4). It is exponential in the number of users and exists as
// the ground-truth oracle for the efficient algorithms (Algorithm 1 in
// package resolve, the LP translation in package lp) and for small exact
// queries. It works on arbitrary (not necessarily binary) trust networks.

// Solution is a total assignment from users to values; NoValue marks an
// undefined belief b(x).
type Solution []Value

// Equal reports whether two solutions agree on every user.
func (s Solution) Equal(t Solution) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// EnumerateStableSolutions returns all stable solutions of the network per
// Definition 2.4. limit > 0 caps the number of solutions returned (0 means
// unbounded). The enumeration is exponential: intended for small networks
// (testing, exact baselines).
//
// A candidate assignment b is a stable solution iff:
//
//	(s1) b(x) = b0(x) wherever b0 is defined;
//	(s2) b(x) is undefined only if x has no explicit belief and no parent
//	     of x has a defined belief;
//	(s3) every defined b(x) is founded: reachable from an explicit belief
//	     through a path of equal values where each step uses a mapping not
//	     dominated by a higher-priority mapping with a conflicting defined
//	     parent belief (conditions (1)-(3) of Definition 2.4).
func EnumerateStableSolutions(n *Network, limit int) []Solution {
	domain := n.Domain()
	nu := n.NumUsers()
	// Candidate values per node: the explicit value if defined, otherwise
	// domain plus NoValue.
	cands := make([][]Value, nu)
	for x := 0; x < nu; x++ {
		if v := n.Explicit(x); v != NoValue {
			cands[x] = []Value{v}
		} else {
			cands[x] = append([]Value{NoValue}, domain...)
		}
	}
	cur := make(Solution, nu)
	var out []Solution
	var rec func(x int) bool // returns false to stop (limit reached)
	rec = func(x int) bool {
		if x == nu {
			if isStable(n, cur) {
				cp := make(Solution, nu)
				copy(cp, cur)
				out = append(out, cp)
				if limit > 0 && len(out) >= limit {
					return false
				}
			}
			return true
		}
		for _, v := range cands[x] {
			cur[x] = v
			// Local pruning: a defined value needs a locally supporting,
			// non-dominated mapping among already-assigned parents unless
			// explicit; we can only prune when all parents are assigned,
			// which node order does not guarantee, so we check fully at the
			// leaf and prune just the cheap (s2) violations we can see.
			if !rec(x + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
	return out
}

// isStable checks conditions (s1)-(s3) above for the assignment b.
func isStable(n *Network, b Solution) bool {
	nu := n.NumUsers()
	for x := 0; x < nu; x++ {
		if v := n.Explicit(x); v != NoValue {
			if b[x] != v {
				return false
			}
			continue
		}
		if b[x] == NoValue {
			// (s2): undefined only if no parent has a belief.
			for _, m := range n.In(x) {
				if b[m.Parent] != NoValue {
					return false
				}
			}
		}
	}
	// (s3): foundedness. founded[x] means b(x) has a valid lineage.
	founded := make([]bool, nu)
	queue := make([]int, 0, nu)
	for x := 0; x < nu; x++ {
		if n.Explicit(x) != NoValue {
			founded[x] = true
			queue = append(queue, x)
		}
	}
	// supports(m) holds if mapping m can carry b(parent) to its child:
	// values match and no strictly higher-priority mapping into the child
	// has a conflicting defined parent belief.
	supports := func(m Mapping) bool {
		if b[m.Parent] == NoValue || b[m.Parent] != b[m.Child] {
			return false
		}
		for _, m2 := range n.In(m.Child) {
			if m2.Priority <= m.Priority {
				break // sorted descending
			}
			if b[m2.Parent] != NoValue && b[m2.Parent] != b[m.Child] {
				return false
			}
		}
		return true
	}
	// Propagate foundedness. O(n * e) worst case; fine for oracle sizes.
	for len(queue) > 0 {
		z := queue[0]
		queue = queue[1:]
		for x := 0; x < nu; x++ {
			if founded[x] {
				continue
			}
			for _, m := range n.In(x) {
				if m.Parent == z && supports(m) {
					founded[x] = true
					queue = append(queue, x)
					break
				}
			}
		}
	}
	for x := 0; x < nu; x++ {
		if b[x] != NoValue && !founded[x] {
			return false
		}
	}
	return true
}

// PossibleFromSolutions computes poss(x) for every x from an enumerated
// solution set: the set of values v with b(x)=v in some stable solution
// (Definition 2.7). The result maps each user to a set of values.
func PossibleFromSolutions(n *Network, sols []Solution) []map[Value]bool {
	poss := make([]map[Value]bool, n.NumUsers())
	for i := range poss {
		poss[i] = make(map[Value]bool)
	}
	for _, s := range sols {
		for x, v := range s {
			if v != NoValue {
				poss[x][v] = true
			}
		}
	}
	return poss
}

// CertainFromSolutions computes cert(x): the value believed by x in every
// stable solution, or NoValue if none (Definition 2.7).
func CertainFromSolutions(n *Network, sols []Solution) []Value {
	nu := n.NumUsers()
	cert := make([]Value, nu)
	if len(sols) == 0 {
		return cert
	}
	copy(cert, sols[0])
	for _, s := range sols[1:] {
		for x, v := range s {
			if cert[x] != v {
				cert[x] = NoValue
			}
		}
	}
	return cert
}

// PossiblePairsFromSolutions computes poss(x,y) = {(v,w) | some stable b has
// b(x)=v, b(y)=w, both defined} for the given pair (Section 2.5).
func PossiblePairsFromSolutions(sols []Solution, x, y int) map[[2]Value]bool {
	out := make(map[[2]Value]bool)
	for _, s := range sols {
		if s[x] != NoValue && s[y] != NoValue {
			out[[2]Value{s[x], s[y]}] = true
		}
	}
	return out
}
