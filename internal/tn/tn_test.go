package tn

import (
	"math/rand"
	"testing"
)

// buildSimpleTN builds the network of Figure 4a: x1 trusts x2 (prio 100)
// and x3 (prio 50); b0(x2)=v, b0(x3)=w.
func buildSimpleTN() (*Network, int, int, int) {
	n := New()
	x1 := n.AddUser("x1")
	x2 := n.AddUser("x2")
	x3 := n.AddUser("x3")
	n.AddMapping(x2, x1, 100)
	n.AddMapping(x3, x1, 50)
	n.SetExplicit(x2, "v")
	n.SetExplicit(x3, "w")
	return n, x1, x2, x3
}

// buildOscillator builds the network of Figure 4b (Example 2.6): x1 and x2
// trust each other with high priority; x3 feeds x1 and x4 feeds x2 with low
// priority; b0(x3)=v, b0(x4)=w.
func buildOscillator() (*Network, [4]int) {
	n := New()
	x1 := n.AddUser("x1")
	x2 := n.AddUser("x2")
	x3 := n.AddUser("x3")
	x4 := n.AddUser("x4")
	n.AddMapping(x2, x1, 100)
	n.AddMapping(x3, x1, 50)
	n.AddMapping(x1, x2, 80)
	n.AddMapping(x4, x2, 40)
	n.SetExplicit(x3, "v")
	n.SetExplicit(x4, "w")
	return n, [4]int{x1, x2, x3, x4}
}

func TestSimpleTNSingleStableSolution(t *testing.T) {
	n, x1, x2, x3 := buildSimpleTN()
	sols := EnumerateStableSolutions(n, 0)
	if len(sols) != 1 {
		t.Fatalf("want 1 stable solution, got %d: %v", len(sols), sols)
	}
	s := sols[0]
	if s[x1] != "v" || s[x2] != "v" || s[x3] != "w" {
		t.Errorf("unexpected solution %v", s)
	}
}

func TestOscillatorTwoStableSolutions(t *testing.T) {
	n, xs := buildOscillator()
	sols := EnumerateStableSolutions(n, 0)
	if len(sols) != 2 {
		t.Fatalf("want 2 stable solutions, got %d: %v", len(sols), sols)
	}
	// One solution has x1=x2=v, the other x1=x2=w (Example 2.6).
	seen := map[Value]bool{}
	for _, s := range sols {
		if s[xs[0]] != s[xs[1]] {
			t.Errorf("x1 and x2 must agree in each solution: %v", s)
		}
		seen[s[xs[0]]] = true
		if s[xs[2]] != "v" || s[xs[3]] != "w" {
			t.Errorf("roots must keep explicit beliefs: %v", s)
		}
	}
	if !seen["v"] || !seen["w"] {
		t.Errorf("solutions should cover both v and w: %v", sols)
	}
	cert := CertainFromSolutions(n, sols)
	if cert[xs[0]] != NoValue || cert[xs[1]] != NoValue {
		t.Errorf("x1, x2 must have no certain value: %v", cert)
	}
	if cert[xs[2]] != "v" || cert[xs[3]] != "w" {
		t.Errorf("roots must be certain: %v", cert)
	}
}

// TestIndusExample replays Figure 1/Figure 2: Alice trusts Bob (100) and
// Charlie (50); Bob trusts Alice (80).
func TestIndusExample(t *testing.T) {
	build := func() (*Network, int, int, int) {
		n := New()
		alice := n.AddUser("Alice")
		bob := n.AddUser("Bob")
		charlie := n.AddUser("Charlie")
		n.AddMapping(bob, alice, 100)
		n.AddMapping(charlie, alice, 50)
		n.AddMapping(alice, bob, 80)
		return n, alice, bob, charlie
	}
	// Case 1 (Example 2.5): only Charlie has a belief => everyone jar.
	n, alice, bob, charlie := build()
	n.SetExplicit(charlie, "jar")
	sols := EnumerateStableSolutions(n, 0)
	if len(sols) != 1 {
		t.Fatalf("case1: want unique solution, got %d", len(sols))
	}
	if sols[0][alice] != "jar" || sols[0][bob] != "jar" {
		t.Errorf("case1: want alice=bob=jar, got %v", sols[0])
	}
	// Case 2: Charlie=jar, Bob=cow => Alice=cow.
	n, alice, bob, charlie = build()
	n.SetExplicit(charlie, "jar")
	n.SetExplicit(bob, "cow")
	sols = EnumerateStableSolutions(n, 0)
	if len(sols) != 1 {
		t.Fatalf("case2: want unique solution, got %d", len(sols))
	}
	if sols[0][alice] != "cow" {
		t.Errorf("case2: want alice=cow, got %v", sols[0])
	}
	// Glyph 2 of Figure 1: Bob=fish (prio 100 for Alice), Charlie=knot.
	n, alice, bob, charlie = build()
	n.SetExplicit(bob, "fish")
	n.SetExplicit(charlie, "knot")
	sols = EnumerateStableSolutions(n, 0)
	if len(sols) != 1 || sols[0][alice] != "fish" {
		t.Errorf("glyph2: want alice=fish, got %v", sols)
	}
}

func TestExplicitBeliefOnInternalNodeWins(t *testing.T) {
	// Bob has an explicit belief and a parent with a conflicting belief:
	// his explicit belief must win (Definition 2.4 / Definition 2.1).
	n := New()
	a := n.AddUser("a")
	b := n.AddUser("b")
	n.AddMapping(a, b, 10)
	n.SetExplicit(a, "v")
	n.SetExplicit(b, "w")
	sols := EnumerateStableSolutions(n, 0)
	if len(sols) != 1 || sols[0][b] != "w" {
		t.Fatalf("explicit belief must win: %v", sols)
	}
}

func TestUnreachableNodeUndefined(t *testing.T) {
	n := New()
	a := n.AddUser("a")
	b := n.AddUser("b")
	c := n.AddUser("c") // no parents, no explicit belief
	n.AddMapping(a, b, 1)
	n.SetExplicit(a, "v")
	_ = c
	sols := EnumerateStableSolutions(n, 0)
	if len(sols) != 1 {
		t.Fatalf("want 1 solution, got %d", len(sols))
	}
	if sols[0][c] != NoValue {
		t.Errorf("unreachable node must stay undefined: %v", sols[0])
	}
	reach := n.ReachableFromRoots()
	if !reach[a] || !reach[b] || reach[c] {
		t.Errorf("reachability wrong: %v", reach)
	}
}

func TestTieBreakingGivesTwoSolutions(t *testing.T) {
	// x has two parents with EQUAL priority and conflicting beliefs:
	// ties are broken arbitrarily, so both values are possible.
	n := New()
	x := n.AddUser("x")
	p := n.AddUser("p")
	q := n.AddUser("q")
	n.AddMapping(p, x, 5)
	n.AddMapping(q, x, 5)
	n.SetExplicit(p, "v")
	n.SetExplicit(q, "w")
	sols := EnumerateStableSolutions(n, 0)
	if len(sols) != 2 {
		t.Fatalf("want 2 solutions under a tie, got %d: %v", len(sols), sols)
	}
	poss := PossibleFromSolutions(n, sols)
	if !poss[x]["v"] || !poss[x]["w"] {
		t.Errorf("both values must be possible: %v", poss[x])
	}
}

func TestPreferredParent(t *testing.T) {
	n := New()
	x := n.AddUser("x")
	p := n.AddUser("p")
	q := n.AddUser("q")
	if _, ok := n.PreferredParent(x); ok {
		t.Error("no parents: no preferred parent")
	}
	n.AddMapping(p, x, 5)
	if pp, ok := n.PreferredParent(x); !ok || pp != p {
		t.Error("single parent must be preferred")
	}
	n.AddMapping(q, x, 9)
	if pp, ok := n.PreferredParent(x); !ok || pp != q {
		t.Error("higher priority parent must be preferred")
	}
	n2 := New()
	x2 := n2.AddUser("x")
	p2 := n2.AddUser("p")
	q2 := n2.AddUser("q")
	n2.AddMapping(p2, x2, 5)
	n2.AddMapping(q2, x2, 5)
	if _, ok := n2.PreferredParent(x2); ok {
		t.Error("tied priorities: no preferred parent")
	}
}

func TestValidate(t *testing.T) {
	n := New()
	a := n.AddUser("a")
	b := n.AddUser("b")
	n.AddMapping(a, b, 1)
	if err := n.Validate(); err != nil {
		t.Errorf("valid network rejected: %v", err)
	}
	n.AddMapping(a, b, 2)
	if err := n.Validate(); err == nil {
		t.Error("duplicate parent-child pair not rejected")
	}
	n2 := New()
	c := n2.AddUser("c")
	n2.AddMapping(c, c, 1)
	if err := n2.Validate(); err == nil {
		t.Error("self mapping not rejected")
	}
}

func TestAddUserIdempotent(t *testing.T) {
	n := New()
	a := n.AddUser("a")
	if n.AddUser("a") != a {
		t.Error("AddUser must be idempotent per name")
	}
	if n.UserID("a") != a || n.UserID("zz") != -1 {
		t.Error("UserID lookup wrong")
	}
	if n.Name(a) != "a" {
		t.Error("Name lookup wrong")
	}
}

func TestDomain(t *testing.T) {
	n := New()
	a := n.AddUser("a")
	b := n.AddUser("b")
	c := n.AddUser("c")
	n.SetExplicit(a, "w")
	n.SetExplicit(b, "v")
	n.SetExplicit(c, "w")
	d := n.Domain()
	if len(d) != 2 || d[0] != "v" || d[1] != "w" {
		t.Errorf("domain wrong: %v", d)
	}
}

func TestRevocation(t *testing.T) {
	n := New()
	a := n.AddUser("a")
	n.SetExplicit(a, "v")
	if !n.HasExplicit(a) {
		t.Fatal("explicit belief not set")
	}
	n.SetExplicit(a, NoValue)
	if n.HasExplicit(a) {
		t.Fatal("revocation failed")
	}
}

func TestClone(t *testing.T) {
	n, xs := buildOscillator()
	c := n.Clone()
	c.SetExplicit(xs[0], "z")
	c.AddMapping(xs[3], xs[0], 7)
	if n.HasExplicit(xs[0]) || n.NumMappings() != 4 {
		t.Error("clone not independent")
	}
	if c.NumMappings() != 5 {
		t.Error("clone mapping count wrong")
	}
}

// ---- Binarization ----

func TestBinarizeAlreadyBinary(t *testing.T) {
	n, _ := buildOscillator()
	b := Binarize(n)
	if !b.IsBinary() {
		t.Fatal("binarized network must be binary")
	}
	if b.NumUsers() != n.NumUsers() {
		t.Errorf("no new nodes expected, got %d users", b.NumUsers())
	}
	// Stable solutions restricted to original nodes must match.
	checkBinarizationEquivalence(t, n)
}

func TestBinarizeHoistsExplicitBeliefs(t *testing.T) {
	n := New()
	a := n.AddUser("a")
	b := n.AddUser("b")
	n.AddMapping(a, b, 10)
	n.SetExplicit(a, "v")
	n.SetExplicit(b, "w") // internal node with explicit belief
	bn := Binarize(n)
	if !bn.IsBinary() {
		t.Fatal("not binary after hoisting")
	}
	if bn.NumUsers() != 3 {
		t.Fatalf("want 1 hoisted root, got %d users", bn.NumUsers())
	}
	checkBinarizationEquivalence(t, n)
}

func TestBinarizeCascadePriorities(t *testing.T) {
	// Seven parents with priorities of Figure 10a: p1=p2 < p3=p4=p5 < p6 < p7.
	n := New()
	x := n.AddUser("x")
	var zs []int
	prios := []int{1, 1, 3, 3, 3, 6, 7}
	for i, p := range prios {
		z := n.AddUser("z" + string(rune('1'+i)))
		zs = append(zs, z)
		n.AddMapping(z, x, p)
	}
	for i, z := range zs {
		n.SetExplicit(z, Value(rune('a'+i)))
	}
	b := Binarize(n)
	if !b.IsBinary() {
		t.Fatal("cascade output not binary")
	}
	// k=7 parents: k-2 = 5 new nodes.
	if got := b.NumUsers() - n.NumUsers(); got != 5 {
		t.Errorf("want 5 new nodes, got %d", got)
	}
	// 2(k-1) = 12 edges.
	if b.NumMappings() != 12 {
		t.Errorf("want 12 mappings, got %d", b.NumMappings())
	}
	checkBinarizationEquivalence(t, n)
}

// checkBinarizationEquivalence verifies Proposition 2.8: the stable
// solutions of Binarize(n) restricted to the original nodes are exactly the
// stable solutions of n.
func checkBinarizationEquivalence(t *testing.T, n *Network) {
	t.Helper()
	b := Binarize(n)
	if !b.IsBinary() {
		t.Fatal("Binarize result not binary")
	}
	orig := EnumerateStableSolutions(n, 0)
	bin := EnumerateStableSolutions(b, 0)
	restrict := func(s Solution) string {
		key := ""
		for x := 0; x < n.NumUsers(); x++ {
			key += string(s[x]) + "|"
		}
		return key
	}
	oset := map[string]bool{}
	for _, s := range orig {
		oset[restrict(s)] = true
	}
	bset := map[string]bool{}
	for _, s := range bin {
		bset[restrict(s)] = true
	}
	for k := range oset {
		if !bset[k] {
			t.Errorf("solution %q of TN missing in BTN", k)
		}
	}
	for k := range bset {
		if !oset[k] {
			t.Errorf("solution %q of BTN not a TN solution", k)
		}
	}
}

// randomTN builds a random small trust network for property tests.
func randomTN(rng *rand.Rand, maxUsers, maxParents int) *Network {
	n := New()
	nu := 2 + rng.Intn(maxUsers-1)
	for i := 0; i < nu; i++ {
		n.AddUser("u" + string(rune('A'+i)))
	}
	values := []Value{"v", "w", "u"}
	for x := 0; x < nu; x++ {
		// Each node trusts a random subset of other nodes.
		perm := rng.Perm(nu)
		k := rng.Intn(maxParents + 1)
		added := 0
		for _, z := range perm {
			if added >= k {
				break
			}
			if z == x {
				continue
			}
			n.AddMapping(z, x, 1+rng.Intn(4))
			added++
		}
	}
	// Random explicit beliefs on ~40% of nodes, at least one.
	any := false
	for x := 0; x < nu; x++ {
		if rng.Float64() < 0.4 {
			n.SetExplicit(x, values[rng.Intn(len(values))])
			any = true
		}
	}
	if !any {
		n.SetExplicit(rng.Intn(nu), values[rng.Intn(len(values))])
	}
	return n
}

func TestBinarizationEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 60; i++ {
		n := randomTN(rng, 5, 4)
		checkBinarizationEquivalence(t, n)
		if t.Failed() {
			t.Fatalf("failed on random network %d", i)
		}
	}
}

func TestEveryBTNHasAStableSolution(t *testing.T) {
	// Corollary of the Forward Lemma (Lemma A.1): every BTN has at least
	// one stable solution (contrast with general logic programs).
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 80; i++ {
		n := randomTN(rng, 5, 2)
		b := Binarize(n)
		if len(EnumerateStableSolutions(b, 1)) == 0 {
			t.Fatalf("BTN without stable solution (iteration %d)", i)
		}
	}
}

// TestBinarizationCliqueBounds checks the size bounds of Figure 11: for an
// n-clique (n >= 4), the binarized network has n(n-2) nodes and 2n(n-2)
// edges.
func TestBinarizationCliqueBounds(t *testing.T) {
	for _, nn := range []int{4, 5, 6, 8} {
		n := New()
		for i := 0; i < nn; i++ {
			n.AddUser("c" + string(rune('0'+i)))
		}
		for x := 0; x < nn; x++ {
			p := 1
			for z := 0; z < nn; z++ {
				if z == x {
					continue
				}
				n.AddMapping(z, x, p)
				p++
			}
		}
		b := Binarize(n)
		if got, want := b.NumUsers(), nn*(nn-2); got != want {
			t.Errorf("n=%d: users %d want %d", nn, got, want)
		}
		if got, want := b.NumMappings(), 2*nn*(nn-2); got != want {
			t.Errorf("n=%d: mappings %d want %d", nn, got, want)
		}
	}
}

func TestIsBinary(t *testing.T) {
	n, _ := buildOscillator()
	if !n.IsBinary() {
		t.Error("oscillator is binary")
	}
	x5 := n.AddUser("x5")
	n.AddMapping(0, x5, 1)
	n.AddMapping(1, x5, 2)
	n.AddMapping(2, x5, 3)
	if n.IsBinary() {
		t.Error("3 parents is not binary")
	}
}
