package tn

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the network in Graphviz dot format, in the paper's visual
// convention: edges point from trusted parent to trusting child, labelled
// with the priority; users with explicit beliefs are filled and labelled
// with their value.
func DOT(n *Network) string {
	var b strings.Builder
	b.WriteString("digraph trustnetwork {\n  rankdir=BT;\n  node [shape=ellipse];\n")
	for x := 0; x < n.NumUsers(); x++ {
		name := n.Name(x)
		if v := n.Explicit(x); v != NoValue {
			fmt.Fprintf(&b, "  %q [label=%q, style=filled, fillcolor=lightgray];\n",
				name, fmt.Sprintf("%s\\nb0=%s", name, v))
		} else {
			fmt.Fprintf(&b, "  %q;\n", name)
		}
	}
	type edge struct {
		parent, child string
		prio          int
	}
	var edges []edge
	for x := 0; x < n.NumUsers(); x++ {
		for _, m := range n.In(x) {
			edges = append(edges, edge{n.Name(m.Parent), n.Name(x), m.Priority})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].parent != edges[j].parent {
			return edges[i].parent < edges[j].parent
		}
		if edges[i].child != edges[j].child {
			return edges[i].child < edges[j].child
		}
		return edges[i].prio < edges[j].prio
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "  %q -> %q [label=\"%d\"];\n", e.parent, e.child, e.prio)
	}
	b.WriteString("}\n")
	return b.String()
}
