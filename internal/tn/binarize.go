package tn

import "fmt"

// Binarize transforms an arbitrary trust network into an equivalent Binary
// Trust Network (Proposition 2.8, construction of Appendix B.3). The result
// has the same stable solutions when restricted to the original nodes. The
// original users keep their IDs (0..NumUsers()-1 of the input network);
// helper nodes are appended after them.
//
// Two transformations are applied:
//
//  1. Every node x with an explicit belief and at least one parent gets a
//     fresh root x0 carrying the belief, connected to x with a priority
//     strictly above all of x's existing mappings.
//  2. Every node x with k > 2 parents is cascaded into a chain of binary
//     steps y_2 .. y_{k-1} following rules (a)-(e) of Figure 9, ordered
//     from lowest to highest priority so that equal-priority groups form
//     subtrees (Figure 10).
//
// In the output, binary nodes use priority 2 for a preferred edge and 1 for
// non-preferred edges, as in the paper.
func Binarize(n *Network) *Network {
	b := New()
	for _, name := range n.names {
		b.AddUser(name)
	}
	// Step 1: hoist explicit beliefs off internal nodes.
	// We record, per node, the full parent list (possibly extended with the
	// hoisted root) before cascading.
	parents := make([][]edge, n.NumUsers())
	for x := 0; x < n.NumUsers(); x++ {
		in := n.in[x]                       // sorted by priority desc
		for i := len(in) - 1; i >= 0; i-- { // ascending priority
			parents[x] = append(parents[x], edge{in[i].Parent, in[i].Priority})
		}
		v := n.explicit[x]
		if v == NoValue {
			continue
		}
		if len(in) == 0 {
			b.SetExplicit(x, v)
			continue
		}
		x0 := b.AddUser(fmt.Sprintf("%s#b0", n.names[x]))
		b.SetExplicit(x0, v)
		top := in[0].Priority
		parents[x] = append(parents[x], edge{x0, top + 1})
	}
	// Step 2: emit mappings, cascading where k > 2.
	for x := 0; x < n.NumUsers(); x++ {
		ps := parents[x] // ascending priority: p1 <= p2 <= ... <= pk
		k := len(ps)
		switch {
		case k == 0:
			// root; nothing to do
		case k == 1:
			b.AddMapping(ps[0].parent, x, 2)
		case k == 2:
			if ps[0].priority == ps[1].priority {
				b.AddMapping(ps[0].parent, x, 1)
				b.AddMapping(ps[1].parent, x, 1)
			} else {
				b.AddMapping(ps[0].parent, x, 1)
				b.AddMapping(ps[1].parent, x, 2)
			}
		default:
			cascade(b, n.names[x], x, ps)
		}
	}
	return b
}

// cascade emits the binary cascade for node x with parents ps (ascending
// priority, k >= 3), following rules (a)-(e) of Figure 9. Notation matches
// the paper: z_i = ps[i-1].parent, y_1 = z_1, y_k = x, and y_2..y_{k-1} are
// fresh nodes. Priorities in the binarized graph are 2 (preferred) and 1
// (non-preferred).
// edge is a (parent, priority) pair used while building the cascade.
type edge struct {
	parent, priority int
}

func cascade(b *Network, xname string, x int, ps []edge) {
	k := len(ps)
	pr := func(i int) int { return ps[i-1].priority } // p_i, 1-based
	z := func(i int) int { return ps[i-1].parent }    // z_i, 1-based
	y := make([]int, k+1)                             // y_1..y_k, 1-based
	y[1] = z(1)
	for i := 2; i < k; i++ {
		y[i] = b.AddUser(fmt.Sprintf("%s#y%d", xname, i))
	}
	y[k] = x
	// groupStart[i] = minimal j with p_j == p_i within the maximal run of
	// equal priorities containing i.
	groupStart := make([]int, k+1)
	for i := 1; i <= k; i++ {
		if i > 1 && pr(i-1) == pr(i) {
			groupStart[i] = groupStart[i-1]
		} else {
			groupStart[i] = i
		}
	}
	for i := 2; i <= k; i++ {
		prev := pr(i - 1)
		cur := pr(i)
		// "as if p_k < p_{k+1}" for the final node.
		next := cur + 1
		if i < k {
			next = pr(i + 1)
		}
		switch {
		case pr(1) == prev && prev == cur:
			// (a): the leading group of lowest priority.
			b.AddMapping(y[i-1], y[i], 1)
			b.AddMapping(z(i), y[i], 1)
		case prev < cur && cur == next:
			// (b): first chain node of a later equal-priority group.
			b.AddMapping(z(i), y[i], 1)
			b.AddMapping(z(i+1), y[i], 1)
		case pr(1) < prev && prev == cur && cur == next:
			// (c): interior chain node of a later equal-priority group.
			b.AddMapping(y[i-1], y[i], 1)
			b.AddMapping(z(i+1), y[i], 1)
		case pr(1) < prev && prev == cur && cur < next:
			// (d): closing node of a later equal-priority group; merges the
			// group subtree (preferred) with the lower-priority accumulation.
			j := groupStart[i]
			b.AddMapping(y[j-1], y[i], 1)
			b.AddMapping(y[i-1], y[i], 2)
		case prev < cur && cur < next:
			// (e): singleton group; its parent dominates the accumulation.
			b.AddMapping(y[i-1], y[i], 1)
			b.AddMapping(z(i), y[i], 2)
		default:
			panic("tn: unreachable cascade case")
		}
	}
}
