package tn

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestQuickBinarizationSizeBounds: the Appendix B.3 bounds hold for every
// network: binarization at most doubles the number of mappings and at most
// triples |U| + |E| (Figure 11 shows the clique is the worst case).
func TestQuickBinarizationSizeBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomTN(rng, 7, 6)
		b := Binarize(n)
		if !b.IsBinary() {
			return false
		}
		if b.NumMappings() > 2*n.NumMappings()+n.NumUsers() {
			// +NumUsers allows for hoisted-belief edges, which the clique
			// bound of Figure 11 does not include.
			return false
		}
		return b.Size() <= 3*n.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickStableSolutionsRelabelingInvariant: stable solutions do not
// depend on user IDs — rebuilding the network with permuted user insertion
// order yields the same solutions up to renaming.
func TestQuickStableSolutionsRelabelingInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomTN(rng, 6, 3)
		perm := rng.Perm(n.NumUsers())
		m := New()
		for _, x := range perm {
			m.AddUser(n.Name(x))
		}
		for x := 0; x < n.NumUsers(); x++ {
			for _, e := range n.In(x) {
				m.AddMapping(m.UserID(n.Name(e.Parent)), m.UserID(n.Name(x)), e.Priority)
			}
			m.SetExplicit(m.UserID(n.Name(x)), n.Explicit(x))
		}
		canon := func(net *Network, sols []Solution) map[string]bool {
			set := map[string]bool{}
			for _, s := range sols {
				pairs := make([]string, net.NumUsers())
				for x := 0; x < net.NumUsers(); x++ {
					pairs[x] = net.Name(x) + "=" + string(s[x])
				}
				sortStrings(pairs)
				set[strings.Join(pairs, "|")] = true
			}
			return set
		}
		a := canon(n, EnumerateStableSolutions(n, 0))
		b := canon(m, EnumerateStableSolutions(m, 0))
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if !b[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// TestQuickEveryBeliefHasLineageSource: every value appearing in a stable
// solution is some user's explicit belief (the lineage requirement of
// Definition 2.4 in property form).
func TestQuickEveryBeliefHasLineageSource(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomTN(rng, 6, 3)
		explicit := map[Value]bool{}
		for x := 0; x < n.NumUsers(); x++ {
			if v := n.Explicit(x); v != NoValue {
				explicit[v] = true
			}
		}
		for _, s := range EnumerateStableSolutions(n, 0) {
			for _, v := range s {
				if v != NoValue && !explicit[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDOT(t *testing.T) {
	n, _ := buildOscillator()
	dot := DOT(n)
	for _, want := range []string{
		"digraph trustnetwork",
		`"x2" -> "x1" [label="100"]`,
		`b0=v`,
		"fillcolor=lightgray",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
	// Deterministic output.
	if DOT(n) != dot {
		t.Error("DOT must be deterministic")
	}
}
