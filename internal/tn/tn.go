// Package tn implements the trust network model of Gatterbauer & Suciu,
// "Data Conflict Resolution Using Trust Mappings" (SIGMOD 2010):
//
//   - explicit beliefs (Definition 2.1),
//   - priority trust mappings (Definition 2.2),
//   - priority trust networks (Definition 2.3),
//   - stable solutions (Definition 2.4) via an exact enumerator used as the
//     test oracle throughout the repository,
//   - binary trust networks and the binarization construction
//     (Proposition 2.8, Appendix B.3).
//
// Users are dense integer IDs with optional string names; values are
// strings. The package is deliberately free of any resolution logic beyond
// the exact enumerator: the efficient algorithms live in package resolve
// (Algorithm 1) and package skeptic (Algorithm 2).
package tn

import (
	"fmt"
	"sort"
	"sync/atomic"

	"trustmap/internal/graph"
)

// Value is a data value a user may believe for the (implicit) object.
// The empty string means "no value"; it is not a legal belief.
type Value string

// NoValue is the zero Value, representing the absence of a belief.
const NoValue Value = ""

// Mapping is a priority trust mapping m = (z, p, x): user Child = x trusts
// the value from user Parent = z with priority Priority = p (Definition 2.2).
// Priorities are comparable only among mappings sharing the same Child.
type Mapping struct {
	Parent   int
	Child    int
	Priority int
}

// MutationKind discriminates journal entries.
type MutationKind uint8

// The journaled mutation kinds. Only mutations that change the network are
// recorded: re-adding an existing user, removing an absent mapping, or
// setting a belief to its current value leave no trace.
const (
	MutAddUser MutationKind = iota
	MutAddMapping
	MutRemoveMapping
	MutSetPriority
	MutSetExplicit
)

// Mutation is one journaled network change. The fields used depend on Kind:
// AddUser fills User; the mapping kinds fill Parent/Child plus the relevant
// priorities; SetExplicit fills User, Value and OldValue (a revocation has
// Value == NoValue, a fresh belief has OldValue == NoValue).
type Mutation struct {
	Kind        MutationKind
	User        int
	Parent      int
	Child       int
	Priority    int
	OldPriority int
	Value       Value
	OldValue    Value
}

// Network is a priority trust network TN = (U, E, b0) (Definition 2.3).
// The zero value is not usable; call New.
type Network struct {
	names    []string
	byName   map[string]int
	in       [][]Mapping // incoming mappings per child, sorted by Priority desc, Parent asc
	explicit []Value     // b0; NoValue where undefined
	nEdges   int

	version    atomic.Uint64 // bumped on every effective mutation
	journaling bool
	journal    []Mutation
}

// New returns an empty trust network.
func New() *Network {
	return &Network{byName: make(map[string]int)}
}

// Version returns a counter bumped on every effective mutation (user
// added, mapping added/removed/re-prioritized, belief changed). Callers
// holding derived artifacts compare versions to detect staleness. The
// counter alone is safe to read while another goroutine mutates the
// network (it is the one staleness probe a lock-free reader may perform);
// everything else on a Network requires external synchronization.
func (n *Network) Version() uint64 { return n.version.Load() }

// EnableJournal starts recording mutations. The journal is the delta feed
// for incremental engine maintenance (engine.CompiledNetwork.Apply): mutate
// the network, then drain the journal and hand it to the engine.
func (n *Network) EnableJournal() { n.journaling = true }

// DisableJournal stops recording and discards any pending entries.
func (n *Network) DisableJournal() { n.journaling = false; n.journal = nil }

// DrainJournal returns the mutations recorded since the last drain (or
// since EnableJournal) and resets the journal. The caller owns the slice.
func (n *Network) DrainJournal() []Mutation {
	j := n.journal
	n.journal = nil
	return j
}

// record bumps the version and journals the mutation when enabled.
func (n *Network) record(m Mutation) {
	n.version.Add(1)
	if n.journaling {
		n.journal = append(n.journal, m)
	}
}

// AddUser adds a user with the given name and returns its ID. Adding a name
// twice returns the existing ID.
func (n *Network) AddUser(name string) int {
	if id, ok := n.byName[name]; ok {
		return id
	}
	id := len(n.names)
	n.names = append(n.names, name)
	n.byName[name] = id
	n.in = append(n.in, nil)
	n.explicit = append(n.explicit, NoValue)
	n.record(Mutation{Kind: MutAddUser, User: id})
	return id
}

// UserID returns the ID for name, or -1 if unknown.
func (n *Network) UserID(name string) int {
	if id, ok := n.byName[name]; ok {
		return id
	}
	return -1
}

// Name returns the name of user x.
func (n *Network) Name(x int) string { return n.names[x] }

// NumUsers returns |U|.
func (n *Network) NumUsers() int { return len(n.names) }

// NumMappings returns |E|.
func (n *Network) NumMappings() int { return n.nEdges }

// Size returns |U| + |E|, the size measure used in the paper's experiments.
func (n *Network) Size() int { return len(n.names) + n.nEdges }

// insertMapping splices m into a child's incoming list, keeping the sort:
// Priority desc, Parent asc.
func insertMapping(in []Mapping, m Mapping) []Mapping {
	i := sort.Search(len(in), func(i int) bool {
		if in[i].Priority != m.Priority {
			return in[i].Priority < m.Priority
		}
		return in[i].Parent >= m.Parent
	})
	in = append(in, Mapping{})
	copy(in[i+1:], in[i:])
	in[i] = m
	return in
}

// AddMapping adds the trust mapping (parent, priority, child).
func (n *Network) AddMapping(parent, child, priority int) {
	if parent < 0 || parent >= len(n.names) || child < 0 || child >= len(n.names) {
		panic(fmt.Sprintf("tn: mapping (%d,%d) out of range", parent, child))
	}
	n.in[child] = insertMapping(n.in[child], Mapping{Parent: parent, Child: child, Priority: priority})
	n.nEdges++
	n.record(Mutation{Kind: MutAddMapping, Parent: parent, Child: child, Priority: priority})
}

// RemoveMapping revokes the trust mapping parent -> child. It reports
// whether the mapping existed; removing an absent mapping is a no-op.
// Revoking the sole non-preferred sibling promotes the remaining parent to
// preferred (Section 2.2); revoking the last incoming mapping re-roots the
// child.
func (n *Network) RemoveMapping(parent, child int) bool {
	if child < 0 || child >= len(n.names) {
		return false
	}
	in := n.in[child]
	for i, m := range in {
		if m.Parent == parent {
			n.in[child] = append(in[:i], in[i+1:]...)
			n.nEdges--
			n.record(Mutation{Kind: MutRemoveMapping, Parent: parent, Child: child, OldPriority: m.Priority})
			return true
		}
	}
	return false
}

// SetMappingPriority changes the priority of the mapping parent -> child,
// keeping the child's incoming list sorted. It reports whether the mapping
// existed; setting the current priority is a no-op.
func (n *Network) SetMappingPriority(parent, child, priority int) bool {
	if child < 0 || child >= len(n.names) {
		return false
	}
	in := n.in[child]
	for i, m := range in {
		if m.Parent == parent {
			if m.Priority == priority {
				return true
			}
			old := m.Priority
			copy(in[i:], in[i+1:])
			in = in[:len(in)-1]
			n.in[child] = insertMapping(in, Mapping{Parent: parent, Child: child, Priority: priority})
			n.record(Mutation{Kind: MutSetPriority, Parent: parent, Child: child, Priority: priority, OldPriority: old})
			return true
		}
	}
	return false
}

// SetExplicit sets the explicit belief b0(x) = v. Passing NoValue clears it
// (a revocation). Setting the current value is a no-op.
func (n *Network) SetExplicit(x int, v Value) {
	old := n.explicit[x]
	if old == v {
		return
	}
	n.explicit[x] = v
	n.record(Mutation{Kind: MutSetExplicit, User: x, Value: v, OldValue: old})
}

// Explicit returns b0(x), or NoValue if undefined.
func (n *Network) Explicit(x int) Value { return n.explicit[x] }

// HasExplicit reports whether b0(x) is defined.
func (n *Network) HasExplicit(x int) bool { return n.explicit[x] != NoValue }

// In returns the incoming mappings of x, sorted by priority descending
// (ties by parent ID ascending). The slice is shared; do not modify.
func (n *Network) In(x int) []Mapping { return n.in[x] }

// PreferredParent returns x's preferred parent (Section 2.2): the single
// parent, or the strictly higher-priority one of two or more. ok is false
// if x has no parents or the top priority is tied.
func (n *Network) PreferredParent(x int) (parent int, ok bool) {
	in := n.in[x]
	if len(in) == 0 {
		return -1, false
	}
	if len(in) > 1 && in[1].Priority == in[0].Priority {
		return -1, false
	}
	return in[0].Parent, true
}

// IsRoot reports whether x has no incoming mappings.
func (n *Network) IsRoot(x int) bool { return len(n.in[x]) == 0 }

// IsBinary reports whether the network is a Binary Trust Network: every
// node has at most two incoming edges and explicit beliefs are defined only
// for root nodes (Section 2.2).
func (n *Network) IsBinary() bool {
	for x := range n.names {
		if len(n.in[x]) > 2 {
			return false
		}
		if n.explicit[x] != NoValue && len(n.in[x]) > 0 {
			return false
		}
	}
	return true
}

// Graph returns the digraph of the network with an edge parent -> child for
// every mapping.
func (n *Network) Graph() *graph.Digraph {
	g := graph.New(len(n.names))
	for _, in := range n.in {
		for _, m := range in {
			g.AddEdge(m.Parent, m.Child)
		}
	}
	return g
}

// ReachableFromRoots returns the set of nodes reachable from some node with
// an explicit belief. Nodes outside this set have undefined belief in every
// stable solution and may be removed (Section 2.2).
func (n *Network) ReachableFromRoots() []bool {
	var roots []int
	for x := range n.names {
		if n.explicit[x] != NoValue {
			roots = append(roots, x)
		}
	}
	return n.Graph().Reachable(roots, nil)
}

// Domain returns the sorted set of distinct explicit values in the network.
// By the lineage requirement of Definition 2.4, every belief in every stable
// solution is drawn from this set.
func (n *Network) Domain() []Value {
	seen := make(map[Value]bool)
	var d []Value
	for _, v := range n.explicit {
		if v != NoValue && !seen[v] {
			seen[v] = true
			d = append(d, v)
		}
	}
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
	return d
}

// Validate checks structural sanity: no self-mappings and no duplicate
// parent-child pairs (a user states at most one priority per trusted user).
func (n *Network) Validate() error {
	for x, in := range n.in {
		seen := make(map[int]bool)
		for _, m := range in {
			if m.Parent == m.Child {
				return fmt.Errorf("tn: user %q trusts itself", n.names[x])
			}
			if seen[m.Parent] {
				return fmt.Errorf("tn: duplicate mapping %q -> %q", n.names[m.Parent], n.names[x])
			}
			seen[m.Parent] = true
		}
	}
	return nil
}

// Clone returns a deep copy of the network. The copy carries the version
// but not the journal: journaling starts disabled on the clone.
func (n *Network) Clone() *Network {
	c := New()
	c.names = append([]string(nil), n.names...)
	for k, v := range n.byName {
		c.byName[k] = v
	}
	c.in = make([][]Mapping, len(n.in))
	for i := range n.in {
		c.in[i] = append([]Mapping(nil), n.in[i]...)
	}
	c.explicit = append([]Value(nil), n.explicit...)
	c.nEdges = n.nEdges
	c.version.Store(n.version.Load())
	return c
}

// View is an immutable snapshot of the network's name index: user IDs,
// names, and the name -> ID lookup, frozen at the user count of the
// moment it was taken. Views are what lock-free readers hold while a
// writer keeps mutating the network: user names never change once
// assigned and IDs are dense and append-only, so a View taken at U users
// stays correct forever for those U users. Snapshot reuses prev when no
// user was added since it was taken, making repeated snapshots O(1) on
// the no-new-users path.
type View struct {
	names []string // shared with the network; len-capped, append-only
	ids   map[string]int
}

// Snapshot returns a View of the network's current name index, reusing
// prev (which may be nil) when the user set has not grown since prev was
// taken. The caller must hold whatever lock serializes mutations.
func (n *Network) Snapshot(prev *View) *View {
	if prev != nil && len(prev.names) == len(n.names) {
		return prev
	}
	// Cap the slice at its current length: later in-place appends by the
	// writer land beyond this View's reach.
	v := &View{names: n.names[:len(n.names):len(n.names)], ids: make(map[string]int, len(n.names))}
	for id, name := range v.names {
		v.ids[name] = id
	}
	return v
}

// UserID returns the ID for name, or -1 if unknown to this snapshot.
func (v *View) UserID(name string) int {
	if id, ok := v.ids[name]; ok {
		return id
	}
	return -1
}

// Name returns the name of user x.
func (v *View) Name(x int) string { return v.names[x] }

// NumUsers returns the number of users in this snapshot.
func (v *View) NumUsers() int { return len(v.names) }
