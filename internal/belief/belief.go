// Package belief implements the signed-belief machinery of Section 3:
// positive and negative beliefs, consistent belief sets with a finite or
// co-finite negative part, the three paradigms (Agnostic, Eclectic,
// Skeptic), their normal forms, and the preferred union (Definition 3.2)
// plus its paradigm-specialized variant (Equation 1).
//
// Sets are values: operations return new sets and never mutate receivers.
// The value universe is open-ended (strings); the co-finite representation
// encodes sets like ⊥ = {v- | v ∈ D} and {v+} ∪ (⊥ − {v−}) exactly.
package belief

import (
	"fmt"
	"sort"
	"strings"
)

// Paradigm selects how constraints interact with data values during
// conflict resolution (Section 3.1).
type Paradigm int

const (
	// Agnostic keeps only the data value once one is known; constraints are
	// local filters and are not propagated past an accepted value.
	Agnostic Paradigm = iota
	// Eclectic propagates constraints and data values together; any
	// consistent set is in normal form.
	Eclectic
	// Skeptic augments an accepted value v+ with the maximal constraint
	// ruling out every other value: {v+} ∪ (⊥ − {v−}).
	Skeptic
)

// String names the paradigm as the paper does: "agrees" or "skeptic".
func (p Paradigm) String() string {
	switch p {
	case Agnostic:
		return "agnostic"
	case Eclectic:
		return "eclectic"
	case Skeptic:
		return "skeptic"
	}
	return fmt.Sprintf("paradigm(%d)", int(p))
}

// Set is a consistent set of signed beliefs: at most one positive value and
// a negative part that is either a finite set of values or co-finite (all
// values except listed exceptions). The zero value is the empty set.
type Set struct {
	pos    string
	hasPos bool
	coNeg  bool            // negative part is co-finite
	neg    map[string]bool // finite negatives, or exceptions when coNeg
}

// Empty returns the empty belief set.
func Empty() Set { return Set{} }

// Positive returns the singleton positive set {v+}.
func Positive(v string) Set { return Set{pos: v, hasPos: true} }

// Negatives returns the finite negative set {v1-, v2-, ...}.
func Negatives(vs ...string) Set {
	s := Set{neg: make(map[string]bool, len(vs))}
	for _, v := range vs {
		s.neg[v] = true
	}
	return s
}

// Bottom returns ⊥, the set of all negative beliefs (an inconsistent
// constraint rejecting any value).
func Bottom() Set { return Set{coNeg: true} }

// SkepticPositive returns {v+} ∪ (⊥ − {v−}), the Skeptic normal form of a
// positive belief.
func SkepticPositive(v string) Set {
	return Set{pos: v, hasPos: true, coNeg: true, neg: map[string]bool{v: true}}
}

// Pos returns the positive value, if any.
func (s Set) Pos() (string, bool) { return s.pos, s.hasPos }

// HasNeg reports whether v- belongs to the set.
func (s Set) HasNeg(v string) bool {
	if s.coNeg {
		return !s.neg[v]
	}
	return s.neg[v]
}

// CoNegative reports whether the negative part is co-finite (contains v-
// for all but finitely many values, like ⊥).
func (s Set) CoNegative() bool { return s.coNeg }

// IsBottom reports whether the set is exactly ⊥: all negatives, no
// positive.
func (s Set) IsBottom() bool { return s.coNeg && !s.hasPos && len(s.neg) == 0 }

// IsEmpty reports whether the set has no beliefs at all.
func (s Set) IsEmpty() bool { return !s.hasPos && !s.coNeg && len(s.neg) == 0 }

// OnlyNegatives reports whether the set has no positive belief (it may
// still be empty).
func (s Set) OnlyNegatives() bool { return !s.hasPos }

// FiniteNegs returns the finite negative values (only meaningful when
// !CoNegative()), sorted.
func (s Set) FiniteNegs() []string {
	if s.coNeg {
		panic("belief: FiniteNegs on co-finite set")
	}
	out := make([]string, 0, len(s.neg))
	for v := range s.neg {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Exceptions returns the values NOT negatively believed in a co-finite set,
// sorted.
func (s Set) Exceptions() []string {
	if !s.coNeg {
		panic("belief: Exceptions on finite set")
	}
	out := make([]string, 0, len(s.neg))
	for v := range s.neg {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Consistent reports whether the set is internally consistent
// (Definition 3.1): the positive value, if any, is not also negative.
func (s Set) Consistent() bool {
	if !s.hasPos {
		return true
	}
	return !s.HasNeg(s.pos)
}

// Equal reports set equality.
func (s Set) Equal(t Set) bool {
	if s.hasPos != t.hasPos || s.coNeg != t.coNeg {
		return false
	}
	if s.hasPos && s.pos != t.pos {
		return false
	}
	if len(s.neg) != len(t.neg) {
		return false
	}
	for v := range s.neg {
		if !t.neg[v] {
			return false
		}
	}
	return true
}

// String renders the set in the paper's notation.
func (s Set) String() string {
	var parts []string
	if s.hasPos {
		parts = append(parts, s.pos+"+")
	}
	if s.coNeg {
		if len(s.neg) == 0 {
			parts = append(parts, "⊥")
		} else {
			parts = append(parts, "⊥−{"+strings.Join(s.Exceptions(), "−,")+"−}")
		}
	} else {
		for _, v := range s.FiniteNegs() {
			parts = append(parts, v+"-")
		}
	}
	if len(parts) == 0 {
		return "{}"
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// clone returns a deep copy of the neg map.
func cloneNeg(m map[string]bool) map[string]bool {
	if m == nil {
		return nil
	}
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Norm returns the normal form of s under paradigm p (Section 3.1):
//
//	NormA(B) = {v+}            if v+ ∈ B, else B
//	NormE(B) = B
//	NormS(B) = {v+} ∪ (⊥−{v−}) if v+ ∈ B, else B
func Norm(p Paradigm, s Set) Set {
	if !s.hasPos {
		return s
	}
	switch p {
	case Agnostic:
		return Positive(s.pos)
	case Eclectic:
		return s
	case Skeptic:
		return SkepticPositive(s.pos)
	}
	panic("belief: unknown paradigm")
}

// PreferredUnion computes B1 ~∪ B2 (Definition 3.2): all of B1 plus every
// belief of B2 consistent with all of B1. Both inputs must be consistent.
func PreferredUnion(b1, b2 Set) Set {
	out := Set{pos: b1.pos, hasPos: b1.hasPos, coNeg: b1.coNeg, neg: cloneNeg(b1.neg)}
	// Adopt B2's positive if B1 has none and it does not clash with B1's
	// negatives (two distinct positives also clash).
	if !b1.hasPos && b2.hasPos && !b1.HasNeg(b2.pos) {
		out.pos, out.hasPos = b2.pos, true
	}
	// Add B2's negatives except the one clashing with B1's positive.
	// Negative parts: finite sets or co-finite sets; four cases.
	excluded := ""
	if b1.hasPos {
		excluded = b1.pos
	}
	switch {
	case !b2.coNeg:
		// Finite additions.
		if out.neg == nil && len(b2.neg) > 0 {
			out.neg = make(map[string]bool)
		}
		if out.coNeg {
			// out negatives are co-finite: adding v- removes the exception.
			for v := range b2.neg {
				if b1.hasPos && v == excluded {
					continue
				}
				delete(out.neg, v)
			}
		} else {
			for v := range b2.neg {
				if b1.hasPos && v == excluded {
					continue
				}
				out.neg[v] = true
			}
		}
	case b2.coNeg && !out.coNeg:
		// Result becomes co-finite: exceptions are b2's exceptions minus
		// out's finite negatives, plus the excluded clash value.
		exc := make(map[string]bool)
		for v := range b2.neg { // b2 exceptions stay exceptions...
			if !out.neg[v] { // ...unless b1 already negates them
				exc[v] = true
			}
		}
		if b1.hasPos && !out.neg[excluded] {
			// b2 would contribute excluded- (it is co-finite), but that
			// clashes with b1's positive; keep it excepted.
			if !b2.neg[excluded] {
				exc[excluded] = true
			}
			// If excluded was already a b2 exception it is in exc above.
		}
		out.coNeg = true
		out.neg = exc
	default: // both co-finite
		exc := make(map[string]bool)
		for v := range out.neg {
			if b2.neg[v] {
				exc[v] = true // exception in both stays an exception
			}
		}
		if b1.hasPos && out.neg[excluded] && !b2.neg[excluded] {
			// b2 contributes excluded-, clashing with b1's positive.
			exc[excluded] = true
		}
		out.neg = exc
	}
	if len(out.neg) == 0 {
		out.neg = nil
	}
	return out
}

// PreferredUnionP computes the paradigm-specialized preferred union of
// Equation 1: Normσ(Normσ(B1) ~∪ Normσ(B2)).
func PreferredUnionP(p Paradigm, b1, b2 Set) Set {
	return Norm(p, PreferredUnion(Norm(p, b1), Norm(p, b2)))
}
