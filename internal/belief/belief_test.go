package belief

import (
	"math/rand"
	"testing"
)

func TestConstructorsAndPredicates(t *testing.T) {
	if !Empty().IsEmpty() || Empty().CoNegative() {
		t.Error("Empty misbehaves")
	}
	p := Positive("a")
	if v, ok := p.Pos(); !ok || v != "a" {
		t.Error("Positive misbehaves")
	}
	n := Negatives("a", "b")
	if !n.HasNeg("a") || !n.HasNeg("b") || n.HasNeg("c") {
		t.Error("Negatives misbehaves")
	}
	bot := Bottom()
	if !bot.IsBottom() || !bot.HasNeg("anything") {
		t.Error("Bottom misbehaves")
	}
	sp := SkepticPositive("v")
	if v, ok := sp.Pos(); !ok || v != "v" {
		t.Error("SkepticPositive positive part wrong")
	}
	if sp.HasNeg("v") {
		t.Error("SkepticPositive must except v-")
	}
	if !sp.HasNeg("w") || !sp.HasNeg("zzz") {
		t.Error("SkepticPositive must contain all other negatives")
	}
	if !sp.Consistent() {
		t.Error("SkepticPositive must be consistent")
	}
	bad := Set{pos: "a", hasPos: true, neg: map[string]bool{"a": true}}
	if bad.Consistent() {
		t.Error("a+ with a- must be inconsistent")
	}
}

func TestNormalForms(t *testing.T) {
	mixed := PreferredUnion(Negatives("b"), Positive("a")) // {a+, b-}
	if got := Norm(Agnostic, mixed); !got.Equal(Positive("a")) {
		t.Errorf("NormA = %v, want {a+}", got)
	}
	if got := Norm(Eclectic, mixed); !got.Equal(mixed) {
		t.Errorf("NormE = %v, want %v", got, mixed)
	}
	if got := Norm(Skeptic, mixed); !got.Equal(SkepticPositive("a")) {
		t.Errorf("NormS = %v, want skeptic a+", got)
	}
	negOnly := Negatives("x")
	for _, p := range []Paradigm{Agnostic, Eclectic, Skeptic} {
		if got := Norm(p, negOnly); !got.Equal(negOnly) {
			t.Errorf("Norm%v of negative-only set must be identity, got %v", p, got)
		}
	}
}

// TestPaperExamples checks the four worked examples below Equation 1.
func TestPaperExamples(t *testing.T) {
	aNeg := Negatives("a")
	bPos := Positive("b")
	// {a−} ~∪A {b+} = {b+}
	if got := PreferredUnionP(Agnostic, aNeg, bPos); !got.Equal(Positive("b")) {
		t.Errorf("agnostic: got %v want {b+}", got)
	}
	// {a−} ~∪E {b+} = {b+, a−}
	wantE := PreferredUnion(Positive("b"), Negatives("a"))
	if got := PreferredUnionP(Eclectic, aNeg, bPos); !got.Equal(wantE) {
		t.Errorf("eclectic: got %v want %v", got, wantE)
	}
	// {a−} ~∪S {b+} = {b+, a−, c−, d−, ...} = skeptic b+.
	if got := PreferredUnionP(Skeptic, aNeg, bPos); !got.Equal(SkepticPositive("b")) {
		t.Errorf("skeptic: got %v want %v", got, SkepticPositive("b"))
	}
	// {b−} ~∪S {b+} = ⊥
	if got := PreferredUnionP(Skeptic, Negatives("b"), bPos); !got.IsBottom() {
		t.Errorf("skeptic blocked: got %v want ⊥", got)
	}
}

func TestPreferredUnionBasics(t *testing.T) {
	// Positive of B1 wins over conflicting positive of B2.
	got := PreferredUnion(Positive("a"), Positive("b"))
	if v, _ := got.Pos(); v != "a" {
		t.Errorf("B1 positive must win: %v", got)
	}
	// B2's negative clashing with B1's positive is dropped.
	got = PreferredUnion(Positive("a"), Negatives("a", "b"))
	if got.HasNeg("a") || !got.HasNeg("b") {
		t.Errorf("clash filtering wrong: %v", got)
	}
	// Equal positives merge.
	got = PreferredUnion(Positive("a"), Positive("a"))
	if v, ok := got.Pos(); !ok || v != "a" {
		t.Errorf("equal positives: %v", got)
	}
	// Bottom absorbs.
	got = PreferredUnion(Bottom(), Positive("a"))
	if !got.IsBottom() {
		t.Errorf("bottom ~∪ a+ = %v want ⊥", got)
	}
	// Empty identity.
	if got := PreferredUnion(Empty(), Negatives("z")); !got.Equal(Negatives("z")) {
		t.Errorf("empty left identity broken: %v", got)
	}
	if got := PreferredUnion(Negatives("z"), Empty()); !got.Equal(Negatives("z")) {
		t.Errorf("empty right identity broken: %v", got)
	}
}

func TestPreferredUnionCoFinite(t *testing.T) {
	// skeptic a+ ~∪ skeptic b+: keep a+, add all b-negatives except a-.
	got := PreferredUnion(SkepticPositive("a"), SkepticPositive("b"))
	if v, _ := got.Pos(); v != "a" {
		t.Errorf("pos wrong: %v", got)
	}
	if !got.CoNegative() || got.HasNeg("a") || !got.HasNeg("b") || !got.HasNeg("c") {
		t.Errorf("negatives wrong: %v", got)
	}
	// Finite ∪ co-finite.
	got = PreferredUnion(Negatives("x"), SkepticPositive("x"))
	if !got.IsBottom() {
		t.Errorf("{x-} ~∪ skeptic x+ = %v want ⊥", got)
	}
	got = PreferredUnion(Negatives("y"), SkepticPositive("x"))
	if v, _ := got.Pos(); v != "x" || got.HasNeg("x") || !got.HasNeg("y") {
		t.Errorf("{y-} ~∪ skeptic x+ wrong: %v", got)
	}
}

// TestAssociativityCounterexample reproduces the Section 3.3 discussion:
// ~∪ is associative for Skeptic but not for Agnostic or Eclectic.
func TestAssociativityCounterexample(t *testing.T) {
	aNeg, aPos, bPos := Negatives("a"), Positive("a"), Positive("b")
	for _, p := range []Paradigm{Agnostic, Eclectic} {
		b1 := PreferredUnionP(p, aNeg, PreferredUnionP(p, aPos, bPos))
		b2 := PreferredUnionP(p, PreferredUnionP(p, aNeg, aPos), bPos)
		if b1.Equal(b2) {
			t.Errorf("%v: expected non-associativity, both = %v", p, b1)
		}
		if !b1.Equal(Negatives("a")) {
			t.Errorf("%v: B1 = %v want {a-}", p, b1)
		}
	}
	// Paper: B2 = {b+} for Agnostic, {a-, b+} for Eclectic.
	b2a := PreferredUnionP(Agnostic, PreferredUnionP(Agnostic, aNeg, aPos), bPos)
	if !b2a.Equal(Positive("b")) {
		t.Errorf("agnostic B2 = %v want {b+}", b2a)
	}
	b2e := PreferredUnionP(Eclectic, PreferredUnionP(Eclectic, aNeg, aPos), bPos)
	wantE := PreferredUnion(Positive("b"), Negatives("a"))
	if !b2e.Equal(wantE) {
		t.Errorf("eclectic B2 = %v want %v", b2e, wantE)
	}
}

// randomSet builds a random consistent set over a tiny universe, sometimes
// co-finite.
func randomSet(rng *rand.Rand) Set {
	univ := []string{"a", "b", "c"}
	var s Set
	if rng.Float64() < 0.5 {
		s = Positive(univ[rng.Intn(len(univ))])
	}
	if rng.Float64() < 0.5 {
		// co-finite negative part
		exc := map[string]bool{}
		if s.hasPos {
			exc[s.pos] = true
		}
		for _, v := range univ {
			if rng.Float64() < 0.3 {
				exc[v] = true
			}
		}
		s.coNeg = true
		s.neg = exc
	} else {
		negs := map[string]bool{}
		for _, v := range univ {
			if v != s.pos && rng.Float64() < 0.4 {
				negs[v] = true
			}
		}
		if len(negs) > 0 {
			s.neg = negs
		}
	}
	if !s.Consistent() {
		panic("generator produced inconsistent set")
	}
	return s
}

// TestSkepticAssociativityProperty: ~∪S is associative (Section 3.3).
func TestSkepticAssociativityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 3000; i++ {
		b1, b2, b3 := randomSet(rng), randomSet(rng), randomSet(rng)
		l := PreferredUnionP(Skeptic, b1, PreferredUnionP(Skeptic, b2, b3))
		r := PreferredUnionP(Skeptic, PreferredUnionP(Skeptic, b1, b2), b3)
		if !l.Equal(r) {
			t.Fatalf("skeptic not associative: %v, %v, %v -> %v vs %v", b1, b2, b3, l, r)
		}
	}
}

// TestPreferredUnionConsistency: the preferred union of consistent sets is
// consistent and contains all of B1.
func TestPreferredUnionConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	univ := []string{"a", "b", "c", "zzz"}
	for i := 0; i < 3000; i++ {
		b1, b2 := randomSet(rng), randomSet(rng)
		u := PreferredUnion(b1, b2)
		if !u.Consistent() {
			t.Fatalf("inconsistent union: %v ~∪ %v = %v", b1, b2, u)
		}
		// B1 ⊆ result.
		if p, ok := b1.Pos(); ok {
			if q, ok2 := u.Pos(); !ok2 || q != p {
				t.Fatalf("lost B1 positive: %v ~∪ %v = %v", b1, b2, u)
			}
		}
		for _, v := range univ {
			if b1.HasNeg(v) && !u.HasNeg(v) {
				t.Fatalf("lost B1 negative %s-: %v ~∪ %v = %v", v, b1, b2, u)
			}
		}
		// Nothing outside B1 ∪ B2 appears.
		for _, v := range univ {
			if u.HasNeg(v) && !b1.HasNeg(v) && !b2.HasNeg(v) {
				t.Fatalf("invented negative %s-: %v ~∪ %v = %v", v, b1, b2, u)
			}
		}
	}
}

// TestNormIdempotent: Normσ is idempotent for every paradigm.
func TestNormIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 1000; i++ {
		s := randomSet(rng)
		for _, p := range []Paradigm{Agnostic, Eclectic, Skeptic} {
			once := Norm(p, s)
			twice := Norm(p, once)
			if !once.Equal(twice) {
				t.Fatalf("%v norm not idempotent on %v: %v vs %v", p, s, once, twice)
			}
		}
	}
}

func TestString(t *testing.T) {
	cases := map[string]Set{
		"{}":       Empty(),
		"{a+}":     Positive("a"),
		"{a-, b-}": Negatives("b", "a"),
		"{⊥}":      Bottom(),
	}
	for want, s := range cases {
		if got := s.String(); got != want {
			t.Errorf("String(%#v) = %q want %q", s, got, want)
		}
	}
}

func TestParadigmString(t *testing.T) {
	if Agnostic.String() != "agnostic" || Eclectic.String() != "eclectic" || Skeptic.String() != "skeptic" {
		t.Error("paradigm names wrong")
	}
}
