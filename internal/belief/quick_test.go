package belief

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genSet makes Set implement quick.Generator so testing/quick can drive
// properties over random consistent belief sets directly.
type genSet struct{ Set }

func (genSet) Generate(rng *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(genSet{randomSet(rng)})
}

// TestQuickPreferredUnionIdempotent: B ~∪ B = B.
func TestQuickPreferredUnionIdempotent(t *testing.T) {
	f := func(b genSet) bool {
		return PreferredUnion(b.Set, b.Set).Equal(b.Set)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPreferredUnionLeftBias: the left argument always survives
// intact (B1 ⊆ B1 ~∪ B2 over the test universe).
func TestQuickPreferredUnionLeftBias(t *testing.T) {
	univ := []string{"a", "b", "c", "zz"}
	f := func(b1, b2 genSet) bool {
		u := PreferredUnion(b1.Set, b2.Set)
		if p, ok := b1.Pos(); ok {
			if q, ok2 := u.Pos(); !ok2 || q != p {
				return false
			}
		}
		for _, v := range univ {
			if b1.HasNeg(v) && !u.HasNeg(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSkepticAssociative: ~∪S is associative (Section 3.3).
func TestQuickSkepticAssociative(t *testing.T) {
	f := func(a, b, c genSet) bool {
		l := PreferredUnionP(Skeptic, a.Set, PreferredUnionP(Skeptic, b.Set, c.Set))
		r := PreferredUnionP(Skeptic, PreferredUnionP(Skeptic, a.Set, b.Set), c.Set)
		return l.Equal(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickNormPreservesNegOnly: normal forms never change negative-only
// sets, under any paradigm.
func TestQuickNormPreservesNegOnly(t *testing.T) {
	f := func(b genSet) bool {
		if _, ok := b.Pos(); ok {
			return true // only negative-only sets are in scope
		}
		for _, p := range []Paradigm{Agnostic, Eclectic, Skeptic} {
			if !Norm(p, b.Set).Equal(b.Set) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEmptyIsIdentity: the empty set is a two-sided identity of the
// plain preferred union.
func TestQuickEmptyIsIdentity(t *testing.T) {
	f := func(b genSet) bool {
		return PreferredUnion(Empty(), b.Set).Equal(b.Set) &&
			PreferredUnion(b.Set, Empty()).Equal(b.Set)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
