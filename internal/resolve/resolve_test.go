package resolve

import (
	"fmt"
	"math/rand"
	"testing"

	"trustmap/internal/tn"
)

func buildOscillator() (*tn.Network, [4]int) {
	n := tn.New()
	x1 := n.AddUser("x1")
	x2 := n.AddUser("x2")
	x3 := n.AddUser("x3")
	x4 := n.AddUser("x4")
	n.AddMapping(x2, x1, 100)
	n.AddMapping(x3, x1, 50)
	n.AddMapping(x1, x2, 80)
	n.AddMapping(x4, x2, 40)
	n.SetExplicit(x3, "v")
	n.SetExplicit(x4, "w")
	return n, [4]int{x1, x2, x3, x4}
}

func TestResolveSimpleTN(t *testing.T) {
	n := tn.New()
	x1 := n.AddUser("x1")
	x2 := n.AddUser("x2")
	x3 := n.AddUser("x3")
	n.AddMapping(x2, x1, 100)
	n.AddMapping(x3, x1, 50)
	n.SetExplicit(x2, "v")
	n.SetExplicit(x3, "w")
	r := Resolve(n)
	if got := r.Certain(x1); got != "v" {
		t.Errorf("cert(x1)=%q want v", got)
	}
	if got := r.Certain(x2); got != "v" {
		t.Errorf("cert(x2)=%q want v", got)
	}
	if got := r.Certain(x3); got != "w" {
		t.Errorf("cert(x3)=%q want w", got)
	}
}

func TestResolveOscillator(t *testing.T) {
	n, xs := buildOscillator()
	r := Resolve(n)
	for _, x := range xs[:2] {
		poss := r.Possible(x)
		if len(poss) != 2 || poss[0] != "v" || poss[1] != "w" {
			t.Errorf("poss(%d)=%v want [v w]", x, poss)
		}
		if r.Certain(x) != tn.NoValue {
			t.Errorf("cert(%d) should be empty", x)
		}
	}
	if r.Certain(xs[2]) != "v" || r.Certain(xs[3]) != "w" {
		t.Error("roots must be certain")
	}
}

func TestResolveEmptyPreferredParentFallsThrough(t *testing.T) {
	// x's preferred parent is unreachable: x must take the non-preferred
	// parent's value (the unreachable node is treated as removed).
	n := tn.New()
	x := n.AddUser("x")
	dead := n.AddUser("dead")
	alive := n.AddUser("alive")
	n.AddMapping(dead, x, 10) // would be preferred, but carries nothing
	n.AddMapping(alive, x, 5)
	n.SetExplicit(alive, "v")
	r := Resolve(n)
	if got := r.Certain(x); got != "v" {
		t.Errorf("cert(x)=%q want v", got)
	}
	if len(r.Possible(dead)) != 0 {
		t.Error("unreachable node must have empty poss")
	}
}

func TestResolveMatchesEnumeratorFixed(t *testing.T) {
	n, _ := buildOscillator()
	compareWithOracle(t, n)
}

// randomBTN builds a random binary trust network.
func randomBTN(rng *rand.Rand, maxUsers int) *tn.Network {
	n := tn.New()
	nu := 2 + rng.Intn(maxUsers-1)
	for i := 0; i < nu; i++ {
		n.AddUser("u" + string(rune('A'+i)))
	}
	values := []tn.Value{"v", "w", "u"}
	nRoots := 1 + rng.Intn(2)
	for i := 0; i < nRoots && i < nu; i++ {
		n.SetExplicit(i, values[rng.Intn(len(values))])
	}
	for x := nRoots; x < nu; x++ {
		k := rng.Intn(3) // 0, 1 or 2 parents
		perm := rng.Perm(nu)
		added := 0
		for _, z := range perm {
			if added >= k || z == x {
				continue
			}
			var prio int
			if rng.Float64() < 0.2 && added == 1 {
				prio = n.In(x)[0].Priority // create a tie
			} else {
				prio = 1 + rng.Intn(5)
			}
			n.AddMapping(z, x, prio)
			added++
		}
	}
	return n
}

func compareWithOracle(t *testing.T, n *tn.Network) {
	t.Helper()
	sols := tn.EnumerateStableSolutions(n, 0)
	wantPoss := tn.PossibleFromSolutions(n, sols)
	wantCert := tn.CertainFromSolutions(n, sols)
	r := Resolve(n)
	for x := 0; x < n.NumUsers(); x++ {
		got := r.Possible(x)
		if len(got) != len(wantPoss[x]) {
			t.Errorf("poss(%s): got %v want %v", n.Name(x), got, wantPoss[x])
			continue
		}
		for _, v := range got {
			if !wantPoss[x][v] {
				t.Errorf("poss(%s): spurious %q", n.Name(x), v)
			}
		}
		if got := r.Certain(x); got != wantCert[x] {
			t.Errorf("cert(%s): got %q want %q", n.Name(x), got, wantCert[x])
		}
	}
}

// TestResolveMatchesEnumeratorRandom is the paper's Theorem 2.12
// correctness claim, checked against the Definition 2.4 oracle.
func TestResolveMatchesEnumeratorRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for i := 0; i < 300; i++ {
		n := randomBTN(rng, 8)
		compareWithOracle(t, n)
		if t.Failed() {
			t.Fatalf("failed at random network %d", i)
		}
	}
}

// TestResolveBinarizedRandom resolves binarized versions of random
// non-binary networks and compares with the oracle on the original.
func TestResolveBinarizedRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	values := []tn.Value{"v", "w"}
	for i := 0; i < 120; i++ {
		n := tn.New()
		nu := 3 + rng.Intn(3)
		for j := 0; j < nu; j++ {
			n.AddUser("u" + string(rune('A'+j)))
		}
		for x := 0; x < nu; x++ {
			perm := rng.Perm(nu)
			k := rng.Intn(4)
			added := 0
			for _, z := range perm {
				if added >= k || z == x {
					continue
				}
				n.AddMapping(z, x, 1+rng.Intn(3))
				added++
			}
		}
		n.SetExplicit(0, values[rng.Intn(2)])
		if rng.Float64() < 0.5 {
			n.SetExplicit(1, values[rng.Intn(2)])
		}
		b := tn.Binarize(n)
		sols := tn.EnumerateStableSolutions(n, 0)
		wantPoss := tn.PossibleFromSolutions(n, sols)
		wantCert := tn.CertainFromSolutions(n, sols)
		r := Resolve(b)
		for x := 0; x < n.NumUsers(); x++ {
			got := r.Possible(x)
			if len(got) != len(wantPoss[x]) {
				t.Fatalf("net %d poss(%s): got %v want %v", i, n.Name(x), got, wantPoss[x])
			}
			for _, v := range got {
				if !wantPoss[x][v] {
					t.Fatalf("net %d poss(%s): spurious %q", i, n.Name(x), v)
				}
			}
			if got := r.Certain(x); got != wantCert[x] {
				t.Fatalf("net %d cert(%s): got %q want %q", i, n.Name(x), got, wantCert[x])
			}
		}
	}
}

func TestLineage(t *testing.T) {
	n, xs := buildOscillator()
	r := Resolve(n)
	for _, x := range xs[:2] {
		for _, v := range []tn.Value{"v", "w"} {
			path, ok := r.Lineage(x, v)
			if !ok {
				t.Fatalf("lineage(%d,%q) missing", x, v)
			}
			if err := r.VerifyLineage(x, v, path); err != nil {
				t.Errorf("lineage(%d,%q)=%v invalid: %v", x, v, path, err)
			}
		}
	}
	if _, ok := r.Lineage(xs[2], "w"); ok {
		t.Error("w is not possible at x3; lineage must fail")
	}
}

func TestLineageRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 150; i++ {
		n := randomBTN(rng, 8)
		r := Resolve(n)
		for x := 0; x < n.NumUsers(); x++ {
			for _, v := range r.Possible(x) {
				path, ok := r.Lineage(x, v)
				if !ok {
					t.Fatalf("net %d: lineage(%s,%q) missing", i, n.Name(x), v)
				}
				if err := r.VerifyLineage(x, v, path); err != nil {
					t.Fatalf("net %d: invalid lineage: %v", i, err)
				}
			}
		}
	}
}

func TestPossiblePairsOscillator(t *testing.T) {
	n, xs := buildOscillator()
	p := ResolvePairs(n)
	pairs := p.PossiblePairs(xs[0], xs[1])
	// Per Section 2.5: poss(x1,x2) contains (v,v) and (w,w) but not (v,w)
	// or (w,v).
	if !pairs[ValuePair{"v", "v"}] || !pairs[ValuePair{"w", "w"}] {
		t.Errorf("diagonal pairs missing: %v", pairs)
	}
	if pairs[ValuePair{"v", "w"}] || pairs[ValuePair{"w", "v"}] {
		t.Errorf("off-diagonal pairs must be absent: %v", pairs)
	}
	if !p.Agree(xs[0], xs[1]) {
		t.Error("x1 and x2 agree in every stable solution")
	}
	if p.Agree(xs[2], xs[3]) {
		t.Error("x3 and x4 never agree")
	}
}

func TestPossiblePairsMatchEnumerator(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for i := 0; i < 150; i++ {
		n := randomBTN(rng, 7)
		sols := tn.EnumerateStableSolutions(n, 0)
		p := ResolvePairs(n)
		for x := 0; x < n.NumUsers(); x++ {
			for y := 0; y < n.NumUsers(); y++ {
				want := tn.PossiblePairsFromSolutions(sols, x, y)
				got := p.PossiblePairs(x, y)
				if len(got) != len(want) {
					t.Fatalf("net %d pairs(%s,%s): got %v want %v", i, n.Name(x), n.Name(y), got, want)
				}
				for vp := range got {
					if !want[[2]tn.Value{vp[0], vp[1]}] {
						t.Fatalf("net %d pairs(%s,%s): spurious %v (want %v)", i, n.Name(x), n.Name(y), vp, want)
					}
				}
			}
		}
	}
}

func TestConsensusOscillator(t *testing.T) {
	n, xs := buildOscillator()
	p := ResolvePairs(n)
	// x1 and x2 always hold the same value, so every domain value is a
	// consensus value for the pair.
	cons := p.Consensus(xs[0], xs[1])
	if len(cons) != 2 {
		t.Errorf("consensus(x1,x2)=%v want both values", cons)
	}
	// x3 always holds v and x4 always holds w: v fails (x3=v but x4!=v)...
	cons = p.Consensus(xs[2], xs[3])
	if len(cons) != 0 {
		t.Errorf("consensus(x3,x4)=%v want empty", cons)
	}
}

func TestAgreeingPairs(t *testing.T) {
	n, xs := buildOscillator()
	p := ResolvePairs(n)
	agree := p.AgreeingPairs()
	found := false
	for _, pr := range agree {
		if pr == [2]int{xs[0], xs[1]} {
			found = true
		}
		if pr == [2]int{xs[2], xs[3]} {
			t.Error("x3,x4 must not agree")
		}
	}
	if !found {
		t.Error("x1,x2 must be reported as agreeing")
	}
}

func TestResolveNonBinaryPanics(t *testing.T) {
	n := tn.New()
	x := n.AddUser("x")
	a := n.AddUser("a")
	b := n.AddUser("b")
	c := n.AddUser("c")
	n.AddMapping(a, x, 1)
	n.AddMapping(b, x, 2)
	n.AddMapping(c, x, 3)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on non-binary network")
		}
	}()
	Resolve(n)
}

// TestResolveEmptyNetwork and other degenerate shapes.
func TestResolveDegenerateShapes(t *testing.T) {
	// Empty network.
	r := Resolve(tn.New())
	_ = r
	// Single root.
	n := tn.New()
	a := n.AddUser("a")
	n.SetExplicit(a, "v")
	r = Resolve(n)
	if r.Certain(a) != "v" {
		t.Error("single root must be certain")
	}
	// Single isolated node without belief.
	n2 := tn.New()
	b := n2.AddUser("b")
	r = Resolve(n2)
	if len(r.Possible(b)) != 0 {
		t.Error("isolated node must have no possible values")
	}
	// Long chain: values propagate end to end.
	n3 := tn.New()
	prev := n3.AddUser("n0")
	n3.SetExplicit(prev, "v")
	var last int
	for i := 1; i < 500; i++ {
		last = n3.AddUser(fmt.Sprintf("n%d", i))
		n3.AddMapping(prev, last, 1)
		prev = last
	}
	r = Resolve(n3)
	if r.Certain(last) != "v" {
		t.Error("chain propagation failed")
	}
}

// TestPairsWithUnreachableNodes: pairs involving unreachable nodes are
// empty.
func TestPairsWithUnreachableNodes(t *testing.T) {
	n := tn.New()
	a := n.AddUser("a")
	b := n.AddUser("b")
	dead := n.AddUser("dead")
	n.AddMapping(a, b, 1)
	n.AddMapping(dead, b, 2) // preferred but unreachable
	n.SetExplicit(a, "v")
	p := ResolvePairs(n)
	if len(p.PossiblePairs(a, dead)) != 0 {
		t.Error("pairs with unreachable node must be empty")
	}
	if got := p.PossiblePairs(a, b); len(got) != 1 || !got[ValuePair{"v", "v"}] {
		t.Errorf("pairs(a,b) = %v want {(v,v)}", got)
	}
}

// TestSelfPairsAreDiagonal: poss(x,x) is always diagonal.
func TestSelfPairsAreDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	for i := 0; i < 40; i++ {
		n := randomBTN(rng, 6)
		p := ResolvePairs(n)
		for x := 0; x < n.NumUsers(); x++ {
			for vp := range p.PossiblePairs(x, x) {
				if vp[0] != vp[1] {
					t.Fatalf("net %d: poss(%d,%d) off-diagonal %v", i, x, x, vp)
				}
			}
		}
	}
}
