package resolve

import (
	"trustmap/internal/graph"
	"trustmap/internal/tn"
)

// ValuePair is an ordered pair of values (v, w) jointly possible for two
// users: some stable solution b has b(x)=v and b(y)=w.
type ValuePair [2]tn.Value

// PairsResult extends Result with the sets poss(x,y) of Proposition 2.13.
type PairsResult struct {
	*Result
	pairs map[[2]int]map[ValuePair]bool // keyed by (min,max) node pair
}

// pairKey normalizes a node pair and reports whether the values must be
// swapped when reading/writing.
func pairKey(x, y int) (k [2]int, swap bool) {
	if x <= y {
		return [2]int{x, y}, false
	}
	return [2]int{y, x}, true
}

func (p *PairsResult) addPair(x, y int, v, w tn.Value) {
	k, swap := pairKey(x, y)
	if swap {
		v, w = w, v
	}
	m := p.pairs[k]
	if m == nil {
		m = make(map[ValuePair]bool)
		p.pairs[k] = m
	}
	m[ValuePair{v, w}] = true
}

// PossiblePairs returns poss(x,y): all value pairs (v,w) such that some
// stable solution assigns v to x and w to y (Proposition 2.13).
func (p *PairsResult) PossiblePairs(x, y int) map[ValuePair]bool {
	k, swap := pairKey(x, y)
	src := p.pairs[k]
	out := make(map[ValuePair]bool, len(src))
	for vp := range src {
		if swap {
			out[ValuePair{vp[1], vp[0]}] = true
		} else {
			out[vp] = true
		}
	}
	return out
}

// Agree reports whether x and y agree in every stable solution where both
// are defined: all pairs in poss(x,y) are diagonal (Section 2.1, 2.5).
func (p *PairsResult) Agree(x, y int) bool {
	k, _ := pairKey(x, y)
	for vp := range p.pairs[k] {
		if vp[0] != vp[1] {
			return false
		}
	}
	return true
}

// AgreeingPairs returns all user pairs (x < y) that agree in every stable
// solution and are both defined in at least one (the agreement-checking
// query of Section 2.1).
func (p *PairsResult) AgreeingPairs() [][2]int {
	var out [][2]int
	nu := p.n.NumUsers()
	for x := 0; x < nu; x++ {
		for y := x + 1; y < nu; y++ {
			if len(p.pairs[[2]int{x, y}]) > 0 && p.Agree(x, y) {
				out = append(out, [2]int{x, y})
			}
		}
	}
	return out
}

// Consensus returns the consensus values for (x, y): all v such that in
// every stable solution b, b(x)=v iff b(y)=v (Section 2.1).
func (p *PairsResult) Consensus(x, y int) []tn.Value {
	bad := make(map[tn.Value]bool)
	k, _ := pairKey(x, y)
	for vp := range p.pairs[k] {
		if vp[0] != vp[1] {
			bad[vp[0]] = true
			bad[vp[1]] = true
		}
	}
	// A value possible at only one of the two sides (because the other is
	// never defined) also breaks the equivalence.
	if len(p.poss[x]) == 0 || len(p.poss[y]) == 0 {
		for _, v := range p.poss[x] {
			bad[v] = true
		}
		for _, v := range p.poss[y] {
			bad[v] = true
		}
	}
	var out []tn.Value
	for _, v := range p.n.Domain() {
		if !bad[v] {
			out = append(out, v)
		}
	}
	return out
}

// ResolvePairs runs the extended Resolution Algorithm of Proposition 2.13,
// maintaining poss(x,y) for every pair of users. It runs in O(n^4) and is
// meant for moderate networks and conflict-analysis queries.
func ResolvePairs(network *tn.Network) *PairsResult {
	if !network.IsBinary() {
		panic("resolve: network is not binary; apply tn.Binarize first")
	}
	nu := network.NumUsers()
	p := &PairsResult{
		Result: &Result{
			n:     network,
			poss:  make([]valueSet, nu),
			prov:  make([]map[tn.Value]provenance, nu),
			reach: network.ReachableFromRoots(),
		},
		pairs: make(map[[2]int]map[ValuePair]bool),
	}
	for i := range p.prov {
		p.prov[i] = make(map[tn.Value]provenance)
	}
	closed := make([]bool, nu)
	var closedList []int
	nClosed := 0
	close := func(x int) {
		closed[x] = true
		closedList = append(closedList, x)
		nClosed++
	}

	effIn := func(x int) []tn.Mapping {
		var out []tn.Mapping
		for _, m := range network.In(x) {
			if p.reach[m.Parent] {
				out = append(out, m)
			}
		}
		return out
	}
	prefParent := func(x int) (int, bool) {
		in := effIn(x)
		if len(in) == 0 {
			return -1, false
		}
		if len(in) > 1 && in[1].Priority == in[0].Priority {
			return -1, false
		}
		return in[0].Parent, true
	}

	// (I) Initialization: roots with explicit beliefs, plus all root pairs
	// (roots hold their values independently in every stable solution).
	for x := 0; x < nu; x++ {
		if v := network.Explicit(x); v != tn.NoValue {
			p.poss[x] = valueSet{v}
			p.prov[x][v] = provenance{root: true}
			close(x)
		} else if !p.reach[x] {
			close(x)
		}
	}
	for i, x := range closedList {
		for _, y := range closedList[:i+1] {
			vx, vy := network.Explicit(x), network.Explicit(y)
			if vx != tn.NoValue && vy != tn.NoValue {
				p.addPair(x, y, vx, vy)
				if x != y {
					p.addPair(y, x, vy, vx)
				}
			}
		}
	}

	g := network.Graph()
	for nClosed < nu {
		// (S1) A preferred edge z -> x with z closed, x open.
		stepped := false
		for x := 0; x < nu && !stepped; x++ {
			if closed[x] {
				continue
			}
			z, ok := prefParent(x)
			if !ok || !closed[z] {
				continue
			}
			stepped = true
			p.poss[x] = append(valueSet(nil), p.poss[z]...)
			for _, v := range p.poss[x] {
				p.prov[x][v] = provenance{sources: []int{z}}
			}
			// poss(u,x) = poss(u,z) for closed u; poss(z,x) diagonal;
			// poss(x,x) diagonal.
			for _, u := range closedList {
				if u == z {
					continue
				}
				for vp := range p.PossiblePairs(u, z) {
					p.addPair(u, x, vp[0], vp[1])
				}
			}
			for _, v := range p.poss[z] {
				p.addPair(z, x, v, v)
				p.addPair(x, x, v, v)
			}
			close(x)
		}
		if stepped {
			continue
		}
		// (S2) Flood a minimal SCC of the open nodes.
		open := func(v int) bool { return !closed[v] }
		comp, ncomp := g.SCC(open)
		if ncomp == 0 {
			break
		}
		minimal := ncomp - 1
		var members []int
		inS := make(map[int]bool)
		for v := 0; v < nu; v++ {
			if comp[v] == minimal {
				members = append(members, v)
				inS[v] = true
			}
		}
		// Entry edges from closed nodes: z_i -> x_i.
		type entry struct{ z, x int }
		var entries []entry
		var flood valueSet
		for _, x := range members {
			for _, m := range network.In(x) {
				if closed[m.Parent] {
					entries = append(entries, entry{m.Parent, x})
					for _, v := range p.poss[m.Parent] {
						flood = flood.add(v)
					}
				}
			}
		}
		// Collapse preferred edges inside S (all nodes joined by preferred
		// edges take equal values in every stable solution).
		collapsed := collapsePreferred(network, members, inS, effIn)
		sPrime, nodeOf := buildCollapsedGraph(network, members, inS, collapsed)

		// poss(u,x) for u closed, x in S.
		for _, x := range members {
			p.poss[x] = append(valueSet(nil), flood...)
			for _, v := range flood {
				pr := provenance{scc: members}
				for _, e := range entries {
					if p.poss[e.z].has(v) {
						pr.sources = append(pr.sources, e.z)
						pr.entries = append(pr.entries, e.x)
					}
				}
				p.prov[x][v] = pr
			}
			for _, u := range closedList {
				seen := make(map[ValuePair]bool)
				for _, e := range entries {
					for vp := range p.PossiblePairs(u, e.z) {
						if !seen[vp] {
							seen[vp] = true
							p.addPair(u, x, vp[0], vp[1])
						}
					}
				}
			}
			// Diagonal pairs within S (whole-component floods).
			for _, v := range flood {
				p.addPair(x, x, v, v)
			}
		}
		// poss(x,y) for x,y in S: diagonal floods always; off-diagonal via
		// vertex-disjoint paths in the collapsed graph S'.
		for ai, x := range members {
			for _, y := range members[ai+1:] {
				for _, v := range flood {
					p.addPair(x, y, v, v)
					p.addPair(y, x, v, v)
				}
				if collapsed[x] == collapsed[y] {
					continue // preferred-connected: always equal
				}
				for i := range entries {
					for j := range entries {
						if i == j {
							continue
						}
						si := nodeOf[collapsed[entries[i].x]]
						sj := nodeOf[collapsed[entries[j].x]]
						tx := nodeOf[collapsed[x]]
						ty := nodeOf[collapsed[y]]
						if si == sj {
							continue
						}
						if !sPrime.TwoDisjointPathsPaired(si, tx, sj, ty, nil) {
							continue
						}
						for vp := range p.PossiblePairs(entries[i].z, entries[j].z) {
							p.addPair(x, y, vp[0], vp[1])
							p.addPair(y, x, vp[1], vp[0])
						}
					}
				}
			}
		}
		for _, x := range members {
			close(x)
		}
	}
	return p
}

// collapsePreferred unions the members of S that are connected through
// preferred edges (both endpoints in S). Returns a representative map.
func collapsePreferred(network *tn.Network, members []int, inS map[int]bool, effIn func(int) []tn.Mapping) map[int]int {
	parent := make(map[int]int, len(members))
	for _, x := range members {
		parent[x] = x
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, x := range members {
		in := effIn(x)
		if len(in) == 0 {
			continue
		}
		if len(in) > 1 && in[1].Priority == in[0].Priority {
			continue // no preferred parent
		}
		z := in[0].Parent
		if inS[z] {
			parent[find(x)] = find(z)
		}
	}
	out := make(map[int]int, len(members))
	for _, x := range members {
		out[x] = find(x)
	}
	return out
}

// buildCollapsedGraph builds S' over the collapsed representatives with all
// S-internal edges, returning the graph and the dense index of each
// representative.
func buildCollapsedGraph(network *tn.Network, members []int, inS map[int]bool, collapsed map[int]int) (*graph.Digraph, map[int]int) {
	nodeOf := make(map[int]int)
	for _, x := range members {
		r := collapsed[x]
		if _, ok := nodeOf[r]; !ok {
			nodeOf[r] = len(nodeOf)
		}
	}
	g := graph.New(len(nodeOf))
	seen := make(map[[2]int]bool)
	for _, x := range members {
		for _, m := range network.In(x) {
			if !inS[m.Parent] {
				continue
			}
			a, b := nodeOf[collapsed[m.Parent]], nodeOf[collapsed[x]]
			if a == b {
				continue
			}
			k := [2]int{a, b}
			if !seen[k] {
				seen[k] = true
				g.AddEdge(a, b)
			}
		}
	}
	return g, nodeOf
}
