// Package resolve implements the paper's core contribution: the Resolution
// Algorithm (Algorithm 1, Theorem 2.12) computing the possible and certain
// values of every user of a binary trust network in O(n^2) worst-case time,
// together with the extensions of Section 2.5: lineage retrieval, possible
// pairs (Proposition 2.13), agreement checking, and consensus values.
package resolve

import (
	"fmt"
	"sort"

	"trustmap/internal/tn"
)

// Result holds the output of the Resolution Algorithm for a network.
type Result struct {
	n     *tn.Network
	poss  []valueSet // poss(x) per node
	prov  []map[tn.Value]provenance
	reach []bool // nodes reachable from an explicit belief
}

// valueSet is a small ordered set of values. Networks typically carry very
// few distinct values per object, so a sorted slice beats a map.
type valueSet []tn.Value

func (s valueSet) has(v tn.Value) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func (s valueSet) add(v tn.Value) valueSet {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i < len(s) && s[i] == v {
		return s
	}
	s = append(s, "")
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// provenance records where a possible value at a node came from, for
// lineage retrieval (Section 2.5 "Retrieving lineage").
type provenance struct {
	root    bool  // value is the node's own explicit belief
	sources []int // parent nodes the value was imported from
	entries []int // for flooded SCCs: the in-component endpoints of the edges
	scc     []int // members of the flooded component, if any
}

// Resolve runs Algorithm 1 on a binary trust network and returns the
// possible values for every node. It panics if the network is not binary
// (callers binarize first with tn.Binarize).
//
// Nodes not reachable from any explicit belief have an undefined belief in
// every stable solution (Section 2.2); Resolve treats them as removed: they
// get an empty possible set and their outgoing edges carry nothing.
func Resolve(network *tn.Network) *Result {
	if !network.IsBinary() {
		panic("resolve: network is not binary; apply tn.Binarize first")
	}
	nu := network.NumUsers()
	r := &Result{
		n:     network,
		poss:  make([]valueSet, nu),
		prov:  make([]map[tn.Value]provenance, nu),
		reach: network.ReachableFromRoots(),
	}
	for i := range r.prov {
		r.prov[i] = make(map[tn.Value]provenance)
	}
	closed := make([]bool, nu)
	nClosed := 0

	// effIn(x): incoming mappings from reachable parents only. Removing
	// unreachable nodes can promote a node's remaining parent to preferred.
	effIn := func(x int) []tn.Mapping {
		in := network.In(x)
		ok := true
		for _, m := range in {
			if !r.reach[m.Parent] {
				ok = false
				break
			}
		}
		if ok {
			return in
		}
		var out []tn.Mapping
		for _, m := range in {
			if r.reach[m.Parent] {
				out = append(out, m)
			}
		}
		return out
	}
	prefParent := func(x int) (int, bool) {
		in := effIn(x)
		if len(in) == 0 {
			return -1, false
		}
		if len(in) > 1 && in[1].Priority == in[0].Priority {
			return -1, false
		}
		return in[0].Parent, true
	}

	// (I) Initialization: close all root nodes with explicit beliefs, and
	// close unreachable nodes with empty possible sets.
	for x := 0; x < nu; x++ {
		if v := network.Explicit(x); v != tn.NoValue {
			r.poss[x] = valueSet{v}
			r.prov[x][v] = provenance{root: true}
			closed[x] = true
			nClosed++
		} else if !r.reach[x] {
			closed[x] = true
			nClosed++
		}
	}

	// preferredChildren[z] lists nodes x for which z is the (effective)
	// preferred parent, enabling O(1) discovery of applicable Step-1 edges.
	preferredChildren := make([][]int, nu)
	for x := 0; x < nu; x++ {
		if closed[x] {
			continue
		}
		if z, ok := prefParent(x); ok {
			preferredChildren[z] = append(preferredChildren[z], x)
		}
	}
	g := network.Graph()

	// Step-1 work queue: open nodes whose preferred parent is closed.
	var s1queue []int
	enqueueChildren := func(z int) {
		for _, x := range preferredChildren[z] {
			if !closed[x] {
				s1queue = append(s1queue, x)
			}
		}
	}
	for z := 0; z < nu; z++ {
		if closed[z] {
			enqueueChildren(z)
		}
	}

	// (M) Main loop.
	for nClosed < nu {
		// (S1) Propagate along preferred edges greedily.
		progressed := false
		for len(s1queue) > 0 {
			x := s1queue[0]
			s1queue = s1queue[1:]
			if closed[x] {
				continue
			}
			z, _ := prefParent(x)
			r.poss[x] = append(valueSet(nil), r.poss[z]...)
			for _, v := range r.poss[x] {
				r.prov[x][v] = provenance{sources: []int{z}}
			}
			closed[x] = true
			nClosed++
			progressed = true
			enqueueChildren(x)
		}
		if nClosed == nu {
			break
		}
		if progressed {
			continue
		}
		// (S2) No preferred edge applies: find the minimal SCCs of the open
		// nodes (no incoming edges from other open components) and flood
		// each with the union of the possible values of its closed parents.
		// Closing every minimal component per Tarjan pass (instead of one)
		// is what makes the algorithm quasi-linear on networks with many
		// independent cycles (Figure 8a) while remaining quadratic on
		// nested components (Figure 15).
		open := func(v int) bool { return !closed[v] }
		comp, ncomp := g.SCC(open)
		if ncomp == 0 {
			break
		}
		// A component is minimal iff it has no incoming edge from another
		// open component.
		hasIncoming := make([]bool, ncomp)
		memberList := make([][]int, ncomp)
		for v := 0; v < nu; v++ {
			if comp[v] < 0 {
				continue
			}
			memberList[comp[v]] = append(memberList[comp[v]], v)
			for _, m := range network.In(v) {
				if cp := comp[m.Parent]; cp >= 0 && cp != comp[v] {
					hasIncoming[comp[v]] = true
				}
			}
		}
		for c := 0; c < ncomp; c++ {
			if hasIncoming[c] {
				continue
			}
			members := memberList[c]
			var flood valueSet
			type entryPoint struct{ z, x int }
			var entries []entryPoint
			for _, x := range members {
				for _, m := range network.In(x) {
					if closed[m.Parent] {
						entries = append(entries, entryPoint{m.Parent, x})
						for _, v := range r.poss[m.Parent] {
							flood = flood.add(v)
						}
					}
				}
			}
			for _, x := range members {
				r.poss[x] = append(valueSet(nil), flood...)
				for _, v := range flood {
					p := provenance{scc: members}
					for _, e := range entries {
						if r.poss[e.z].has(v) {
							p.sources = append(p.sources, e.z)
							p.entries = append(p.entries, e.x)
						}
					}
					r.prov[x][v] = p
				}
				closed[x] = true
				nClosed++
				enqueueChildren(x)
			}
		}
	}
	return r
}

// Possible returns poss(x): the values x takes in some stable solution
// (Definition 2.7). The returned slice is sorted and must not be modified.
func (r *Result) Possible(x int) []tn.Value { return r.poss[x] }

// Certain returns cert(x): the value x takes in every stable solution, or
// tn.NoValue if there is none. Per Section 2.4, cert(x) = {a} iff
// poss(x) = {a}.
func (r *Result) Certain(x int) tn.Value {
	if len(r.poss[x]) == 1 {
		return r.poss[x][0]
	}
	return tn.NoValue
}

// PossibleMap returns poss(x) as a set, for all x.
func (r *Result) PossibleMap() []map[tn.Value]bool {
	out := make([]map[tn.Value]bool, len(r.poss))
	for x, s := range r.poss {
		out[x] = make(map[tn.Value]bool, len(s))
		for _, v := range s {
			out[x][v] = true
		}
	}
	return out
}

// Lineage returns one lineage of the possible value v at node x: a sequence
// of users starting at a node with an explicit belief equal to v and ending
// at x, such that the value was propagated along network edges
// (Section 2.5). ok is false if v is not possible at x.
func (r *Result) Lineage(x int, v tn.Value) (path []int, ok bool) {
	if !r.poss[x].has(v) {
		return nil, false
	}
	seen := make(map[int]bool)
	var build func(x int) ([]int, bool)
	build = func(x int) ([]int, bool) {
		if seen[x] {
			return nil, false
		}
		seen[x] = true
		p, have := r.prov[x][v]
		if !have {
			return nil, false
		}
		if p.root {
			return []int{x}, true
		}
		for i, z := range p.sources {
			prefix, ok := build(z)
			if !ok {
				continue
			}
			if p.scc == nil {
				return append(prefix, x), true
			}
			// Flooded component: expand the hop from the entry node to x
			// with a concrete path inside the component.
			entry := p.entries[i]
			inner := r.pathWithin(p.scc, entry, x)
			if inner == nil {
				continue
			}
			return append(prefix, inner...), true
		}
		return nil, false
	}
	return build(x)
}

// pathWithin finds a path from src to dst using only edges between members
// (both endpoints in the member set). Returns the node sequence including
// src and dst, or nil.
func (r *Result) pathWithin(members []int, src, dst int) []int {
	in := make(map[int]bool, len(members))
	for _, m := range members {
		in[m] = true
	}
	prev := map[int]int{src: src}
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == dst {
			var rev []int
			for v := dst; ; v = prev[v] {
				rev = append(rev, v)
				if v == src {
					break
				}
			}
			for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
				rev[i], rev[j] = rev[j], rev[i]
			}
			return rev
		}
		// Children of u inside the member set.
		for x := range in {
			if _, have := prev[x]; have {
				continue
			}
			for _, m := range r.n.In(x) {
				if m.Parent == u {
					prev[x] = u
					queue = append(queue, x)
					break
				}
			}
		}
	}
	return nil
}

// VerifyLineage checks that path is a valid lineage for value v at node x:
// it starts at an explicit belief v, follows network edges, and ends at x.
func (r *Result) VerifyLineage(x int, v tn.Value, path []int) error {
	if len(path) == 0 {
		return fmt.Errorf("resolve: empty lineage")
	}
	if r.n.Explicit(path[0]) != v {
		return fmt.Errorf("resolve: lineage does not start at an explicit belief of %q", v)
	}
	if path[len(path)-1] != x {
		return fmt.Errorf("resolve: lineage does not end at node %d", x)
	}
	for i := 1; i < len(path); i++ {
		found := false
		for _, m := range r.n.In(path[i]) {
			if m.Parent == path[i-1] {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("resolve: no mapping %d -> %d", path[i-1], path[i])
		}
	}
	return nil
}
