package query

// Execution: streaming scan -> filter -> (self-join) -> project for
// row plans, and scan -> accumulate -> merge -> finalize for aggregate
// plans. The aggregate split (RunPartial / Finalize) is the cluster
// scatter-gather seam: every shard accumulates its own objects at its
// own pinned epoch, and the merge is exact because every aggregate
// function decomposes.

import (
	"context"
	"errors"
	"sort"
	"strconv"
	"strings"

	"trustmap"
	"trustmap/wire"
)

// Result is an executed query: output columns, rows in deterministic
// order, the minimum pinned epoch the rows were served at (the site's
// current epoch when no rows were consumed), and the execution stats.
type Result struct {
	// Columns names the output columns, in row order.
	Columns []string
	// Rows holds one []any per result row, positionally aligned with
	// Columns; values are string, bool, int, int64, float64, or []string.
	Rows [][]any
	// Epoch is the conservative epoch bound of the rows.
	Epoch uint64
	// Stats describes how the query ran.
	Stats wire.QueryStats
}

// getter resolves one column of the current tuple.
type getter func(col string) any

// Run executes a compiled plan against a site. The context cancels
// mid-scan: operator pulls ride the site's Resolved stream, which
// releases its pinned epochs on abandonment.
func Run(ctx context.Context, site Site, p *Plan) (*Result, error) {
	if p.Aggregated() {
		part, err := RunPartial(ctx, site, p)
		if err != nil {
			return nil, err
		}
		res, err := Finalize([]*Partial{part}, p)
		if err != nil {
			return nil, err
		}
		if !part.hasEpoch {
			res.Epoch = site.Epoch()
		}
		return res, nil
	}

	ex := newExec(site, p)
	out := [][]any{}
	stopLimit := p.limit > 0 && len(p.orderBy) == 0
	stopped, err := ex.scan(ctx, func(get getter) bool {
		out = append(out, ex.project(get))
		return !(stopLimit && len(out) >= p.limit)
	})
	if err != nil {
		return nil, err
	}
	if stopped {
		ex.stats.EarlyTerminated = true
	}
	if len(p.orderBy) > 0 {
		sortRows(out, p)
	}
	if p.limit > 0 && len(out) > p.limit {
		out = out[:p.limit]
	}
	ex.stats.RowsEmitted = uint64(len(out))
	epoch := ex.epoch
	if !ex.hasEpoch {
		epoch = site.Epoch()
	}
	return &Result{Columns: append([]string{}, p.sel...), Rows: out, Epoch: epoch, Stats: ex.stats}, nil
}

// exec is the per-run scan state.
type exec struct {
	site     Site
	p        *Plan
	all      []string        // the user universe, sorted
	userSet  map[string]bool // left-side membership under a user pushdown
	stats    wire.QueryStats
	epoch    uint64
	hasEpoch bool
}

func newExec(site Site, p *Plan) *exec {
	ex := &exec{site: site, p: p}
	ex.stats.PredicatesReordered = p.reordered
	ex.all = append([]string{}, site.Users()...)
	sort.Strings(ex.all)
	if p.hasUsers {
		ex.userSet = make(map[string]bool, len(p.users))
		for _, u := range p.users {
			ex.userSet[u] = true
		}
	}
	return ex
}

func (ex *exec) noteEpoch(e uint64) {
	if !ex.hasEpoch || e < ex.epoch {
		ex.epoch, ex.hasEpoch = e, true
	}
}

// scan drives the object source — the key pushdown's point lookups, or
// the site's pinned key-ordered stream — through per-object row
// generation, reporting whether yield stopped it early.
func (ex *exec) scan(ctx context.Context, yield func(getter) bool) (stopped bool, err error) {
	if ex.p.hasUsers && len(ex.p.users) == 0 {
		// Contradictory user equalities: provably empty before any work.
		ex.stats.EarlyTerminated = true
		return false, nil
	}
	if ex.p.hasKeys {
		if len(ex.p.keys) == 0 {
			ex.stats.EarlyTerminated = true
			return false, nil
		}
		for _, key := range ex.p.keys {
			or, err := ex.site.ResolveObject(ctx, key)
			if err != nil {
				if errors.Is(err, trustmap.ErrUnknownObject) {
					continue // a pushed key that is not stored: zero rows
				}
				return false, err
			}
			ex.stats.KeyLookups++
			ex.noteEpoch(or.Epoch())
			if !ex.object(or, yield) {
				return true, nil
			}
		}
		return false, nil
	}
	for or, err := range ex.site.Resolved(ctx) {
		if err != nil {
			return false, err
		}
		ex.noteEpoch(or.Epoch())
		if !ex.object(or, yield) {
			return true, nil
		}
	}
	return false, nil
}

// object generates and filters the relation rows of one resolved
// object; with a join clause it pairs the object's filtered left rows
// against its filtered right rows (joins are per-object by
// construction: on must include "object").
func (ex *exec) object(or trustmap.ObjectRow, yield func(getter) bool) bool {
	beliefs, _ := ex.site.Object(or.Object)
	if ex.p.join == nil {
		users := ex.all
		if ex.p.hasUsers {
			users = ex.p.users
		}
		for _, u := range users {
			r, ok := makeRow(or, beliefs, u)
			if !ok {
				continue
			}
			ex.stats.RowsScanned++
			if !evalPreds(ex.p.filters, r.value) {
				continue
			}
			if !yield(r.value) {
				return false
			}
		}
		return true
	}

	// The right side always draws from the full user universe: a user
	// pushdown in where restricts only the left side, exactly like the
	// user filter it replaces.
	var left, right []*row
	for _, u := range ex.all {
		r, ok := makeRow(or, beliefs, u)
		if !ok {
			continue
		}
		ex.stats.RowsScanned++
		if (ex.userSet == nil || ex.userSet[r.user]) && evalPreds(ex.p.filters, r.value) {
			left = append(left, &r)
		}
		if evalPreds(ex.p.join.where, r.value) {
			right = append(right, &r)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return true // empty build side: skip the pairing entirely
	}
	for _, l := range left {
		for _, rr := range right {
			if !onMatch(ex.p.join.on, l, rr) {
				continue
			}
			get := joinGetter(l, rr)
			if !evalPreds(ex.p.postJoin, get) {
				continue
			}
			if !yield(get) {
				return false
			}
		}
	}
	return true
}

// project materializes the selected output columns of one tuple.
func (ex *exec) project(get getter) []any {
	out := make([]any, len(ex.p.sel))
	for i, c := range ex.p.sel {
		out[i] = get(c)
	}
	return out
}

// joinGetter resolves r_-prefixed columns on the right row and
// everything else on the left.
func joinGetter(l, r *row) getter {
	return func(col string) any {
		if rest, ok := strings.CutPrefix(col, rightPrefix); ok {
			return r.value(rest)
		}
		return l.value(col)
	}
}

// onMatch reports whether the extra join-on columns (beyond object,
// which matches by construction) agree.
func onMatch(on []string, l, r *row) bool {
	for _, c := range on {
		if l.value(c) != r.value(c) {
			return false
		}
	}
	return true
}

// evalPreds reports whether the tuple passes every predicate, in order.
func evalPreds(preds []pred, get getter) bool {
	for i := range preds {
		if !preds[i].eval(get) {
			return false
		}
	}
	return true
}

// eval applies one compiled predicate to the current tuple.
func (p *pred) eval(get getter) bool {
	v := get(p.col)
	if v == nil {
		return false // an empty-group min/max in having
	}
	if p.colB != "" {
		w := get(p.colB)
		if w == nil {
			return false
		}
		return cmpOrdOK(cmpVals(p.kind, v, w), p.op)
	}
	switch p.kind {
	case kindStrings:
		for _, s := range v.([]string) {
			if s == p.str {
				return true
			}
		}
		return false
	case kindBool:
		b := v.(bool)
		if p.op == wire.PredEq {
			return b == p.b
		}
		return b != p.b
	case kindString:
		s := v.(string)
		switch p.op {
		case wire.PredIn:
			for _, w := range p.strs {
				if s == w {
					return true
				}
			}
			return false
		case wire.PredPrefix:
			return strings.HasPrefix(s, p.str)
		default:
			return cmpOrdOK(strings.Compare(s, p.str), p.op)
		}
	default: // kindInt, kindFloat
		f, _ := toFloat(v)
		if p.op == wire.PredIn {
			for _, w := range p.nums {
				if f == w {
					return true
				}
			}
			return false
		}
		return cmpOrdOK(cmpFloat(f, p.num), p.op)
	}
}

// cmpOrdOK maps a three-way comparison onto an ordered operator.
func cmpOrdOK(c int, op string) bool {
	switch op {
	case wire.PredEq:
		return c == 0
	case wire.PredNe:
		return c != 0
	case wire.PredLt:
		return c < 0
	case wire.PredLe:
		return c <= 0
	case wire.PredGt:
		return c > 0
	case wire.PredGe:
		return c >= 0
	}
	return false
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// cmpVals three-way-compares two column values of one kind; nil (an
// empty-group min/max) sorts before everything.
func cmpVals(k kind, a, b any) int {
	if a == nil || b == nil {
		switch {
		case a == nil && b == nil:
			return 0
		case a == nil:
			return -1
		}
		return 1
	}
	switch k {
	case kindString:
		return strings.Compare(a.(string), b.(string))
	case kindBool:
		ab, bb := a.(bool), b.(bool)
		switch {
		case ab == bb:
			return 0
		case !ab:
			return -1
		}
		return 1
	default:
		fa, _ := toFloat(a)
		fb, _ := toFloat(b)
		return cmpFloat(fa, fb)
	}
}

// sortRows stable-sorts projected rows by the plan's order keys; ties
// keep the deterministic scan (or group-key) order.
func sortRows(rows [][]any, p *Plan) {
	sort.SliceStable(rows, func(i, j int) bool {
		for _, ok := range p.orderBy {
			c := cmpVals(ok.kind, rows[i][ok.idx], rows[j][ok.idx])
			if c == 0 {
				continue
			}
			if ok.desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}

// --- aggregation ---------------------------------------------------------

// aggState is one aggregate's decomposable accumulator: (sum, n) covers
// count/sum/avg/rate exactly, mm the running min or max.
type aggState struct {
	n    int64
	sum  float64
	mm   any
	seen bool
}

// accum is one group's accumulators plus its group-key column values.
type accum struct {
	keyVals []any
	aggs    []aggState
}

// Partial is one site's partial aggregation of an aggregate plan: the
// unit a cluster scatters per shard and merges with Finalize. All
// aggregate functions decompose, so merging partials is exact.
type Partial struct {
	groups   map[string]*accum
	stats    wire.QueryStats
	epoch    uint64
	hasEpoch bool
}

// RunPartial scans the site and accumulates the plan's groups without
// finalizing them. The plan must be Aggregated.
func RunPartial(ctx context.Context, site Site, p *Plan) (*Partial, error) {
	if !p.Aggregated() {
		return nil, errors.New("query: RunPartial needs an aggregate plan")
	}
	ex := newExec(site, p)
	part := &Partial{groups: map[string]*accum{}}
	_, err := ex.scan(ctx, func(get getter) bool {
		key, vals := groupKey(p, get)
		a := part.groups[key]
		if a == nil {
			a = &accum{keyVals: vals, aggs: make([]aggState, len(p.aggs))}
			part.groups[key] = a
		}
		accumulate(a, p, get)
		return true
	})
	if err != nil {
		return nil, err
	}
	part.stats = ex.stats
	part.epoch, part.hasEpoch = ex.epoch, ex.hasEpoch
	return part, nil
}

// groupKey encodes the tuple's group-by values into a map key and
// returns the values themselves. Kinds are fixed per column, so the
// NUL-joined encoding is unambiguous.
func groupKey(p *Plan, get getter) (string, []any) {
	if len(p.groupBy) == 0 {
		return "", nil
	}
	vals := make([]any, len(p.groupBy))
	var b strings.Builder
	for i, c := range p.groupBy {
		v := get(c)
		vals[i] = v
		if i > 0 {
			b.WriteByte(0)
		}
		switch p.groupKinds[i] {
		case kindString:
			b.WriteString(v.(string))
		case kindBool:
			if v.(bool) {
				b.WriteByte('t')
			} else {
				b.WriteByte('f')
			}
		default:
			f, _ := toFloat(v)
			b.WriteString(strconv.FormatFloat(f, 'g', -1, 64))
		}
	}
	return b.String(), vals
}

// accumulate folds one tuple into its group.
func accumulate(a *accum, p *Plan, get getter) {
	for i := range p.aggs {
		ap := &p.aggs[i]
		st := &a.aggs[i]
		switch ap.fn {
		case wire.AggCount:
			st.n++
		case wire.AggSum, wire.AggAvg:
			f := numInput(get(ap.of))
			st.sum += f
			st.n++
		case wire.AggRate:
			if get(ap.of).(bool) {
				st.sum++
			}
			st.n++
		case wire.AggMin:
			v := get(ap.of)
			if !st.seen || cmpVals(ap.inKind, v, st.mm) < 0 {
				st.mm, st.seen = v, true
			}
		case wire.AggMax:
			v := get(ap.of)
			if !st.seen || cmpVals(ap.inKind, v, st.mm) > 0 {
				st.mm, st.seen = v, true
			}
		}
	}
}

// numInput widens an aggregate input value: booleans count as 0/1.
func numInput(v any) float64 {
	if b, ok := v.(bool); ok {
		if b {
			return 1
		}
		return 0
	}
	f, _ := toFloat(v)
	return f
}

// Finalize merges partial aggregations — per-shard scatter results, or
// the single partial of an unsharded Run — applies having, orders the
// groups deterministically (group-key ascending, then any explicit
// order keys), and projects the output rows. The merged epoch is the
// minimum over partials that consumed rows (zero when none did; the
// caller substitutes its site's current epoch).
func Finalize(partials []*Partial, p *Plan) (*Result, error) {
	if !p.Aggregated() {
		return nil, errors.New("query: Finalize needs an aggregate plan")
	}
	res := &Result{Columns: append([]string{}, p.sel...)}
	merged := map[string]*accum{}
	first := true
	for _, part := range partials {
		if part == nil {
			continue
		}
		res.Stats.RowsScanned += part.stats.RowsScanned
		res.Stats.KeyLookups += part.stats.KeyLookups
		res.Stats.EarlyTerminated = res.Stats.EarlyTerminated || part.stats.EarlyTerminated
		res.Stats.PredicatesReordered = part.stats.PredicatesReordered
		if part.hasEpoch && (first || part.epoch < res.Epoch) {
			res.Epoch, first = part.epoch, false
		}
		for key, a := range part.groups {
			m := merged[key]
			if m == nil {
				m = &accum{keyVals: a.keyVals, aggs: make([]aggState, len(p.aggs))}
				merged[key] = m
			}
			for i := range a.aggs {
				mergeAgg(&p.aggs[i], &m.aggs[i], &a.aggs[i])
			}
		}
	}
	if len(p.groupBy) == 0 && len(merged) == 0 {
		// A global aggregate over zero rows still answers one group
		// (count 0), matching SQL and the brute-force oracle.
		merged[""] = &accum{aggs: make([]aggState, len(p.aggs))}
	}
	res.Stats.Groups = len(merged)

	groups := make([]*accum, 0, len(merged))
	for _, a := range merged {
		groups = append(groups, a)
	}
	sort.Slice(groups, func(i, j int) bool {
		for c := range p.groupBy {
			cmp := cmpVals(p.groupKinds[c], groups[i].keyVals[c], groups[j].keyVals[c])
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})

	rows := [][]any{}
	for _, a := range groups {
		get := groupGetter(p, a)
		if !evalPreds(p.having, get) {
			continue
		}
		out := make([]any, len(p.sel))
		for i, c := range p.sel {
			out[i] = get(c)
		}
		rows = append(rows, out)
	}
	if len(p.orderBy) > 0 {
		sortRows(rows, p)
	}
	if p.limit > 0 && len(rows) > p.limit {
		rows = rows[:p.limit]
	}
	res.Stats.RowsEmitted = uint64(len(rows))
	res.Rows = rows
	return res, nil
}

// mergeAgg folds one partial aggregate state into the merged one.
func mergeAgg(ap *aggPlan, dst, src *aggState) {
	switch ap.fn {
	case wire.AggMin:
		if src.seen && (!dst.seen || cmpVals(ap.inKind, src.mm, dst.mm) < 0) {
			dst.mm, dst.seen = src.mm, true
		}
	case wire.AggMax:
		if src.seen && (!dst.seen || cmpVals(ap.inKind, src.mm, dst.mm) > 0) {
			dst.mm, dst.seen = src.mm, true
		}
	default:
		dst.n += src.n
		dst.sum += src.sum
	}
}

// groupGetter resolves a group's output columns: group-by values by
// position, aggregate outputs finalized from their states.
func groupGetter(p *Plan, a *accum) getter {
	return func(col string) any {
		for i, c := range p.groupBy {
			if c == col {
				return a.keyVals[i]
			}
		}
		for i := range p.aggs {
			ap := &p.aggs[i]
			if ap.name != col {
				continue
			}
			st := &a.aggs[i]
			switch ap.fn {
			case wire.AggCount:
				return st.n
			case wire.AggSum:
				return st.sum
			case wire.AggAvg, wire.AggRate:
				if st.n == 0 {
					return float64(0)
				}
				return st.sum / float64(st.n)
			default: // min, max
				if !st.seen {
					return nil
				}
				return st.mm
			}
		}
		return nil
	}
}
