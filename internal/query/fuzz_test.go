package query_test

// FuzzQueryPlanParity: a seeded generator draws random valid query
// patterns and requires three independent evaluations to agree exactly
// — the greedy plan, the naive left-to-right plan, and the brute-force
// oracle over the materialized relation. Any divergence is a planner or
// executor bug by construction: greedy reordering, pushdown extraction,
// and partial-aggregate merging must all be invisible in the answer.

import (
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"trustmap"
	"trustmap/internal/query"
	"trustmap/internal/tn"
	"trustmap/internal/workload"
	"trustmap/wire"
)

// fuzzSite lazily builds the shared fuzz fixture: a small power-law
// community with a deterministic object set, materialized once.
var fuzzSite struct {
	once  sync.Once
	st    *trustmap.Store
	users []string
	keys  []string
	rows  []orow
}

func fuzzFixture(t testing.TB) (*trustmap.Store, []string, []string, []orow) {
	fuzzSite.once.Do(func() {
		domain := []tn.Value{"fish", "knot", "cow", "jar"}
		src := workload.PowerLaw(rand.New(rand.NewSource(7)), 24, 2, 0.3, domain)
		fuzzSite.st, fuzzSite.users = workloadStore(t, src, 8)
		fuzzSite.keys = fuzzSite.st.Objects()
		fuzzSite.rows = materialize(t, fuzzSite.st)
	})
	return fuzzSite.st, fuzzSite.users, fuzzSite.keys, fuzzSite.rows
}

// fuzzDomain is the operand pool for string predicates.
var fuzzDomain = []string{"fish", "knot", "cow", "jar", ""}

// randBasePred draws one valid predicate over the base columns.
func randBasePred(rng *rand.Rand, users, keys []string) wire.Predicate {
	ordOps := []string{wire.PredEq, wire.PredNe, wire.PredLt, wire.PredLe, wire.PredGt, wire.PredGe}
	boolCols := []string{"has_certain", "has_belief", "agrees", "disagrees", "conflicted"}
	switch rng.Intn(8) {
	case 0: // object key, eq or in (the pushdown shapes)
		if rng.Intn(2) == 0 {
			return wire.Predicate{Col: "object", Op: wire.PredEq, Value: pick(rng, keys, "absent")}
		}
		return wire.Predicate{Col: "object", Op: wire.PredIn, Values: pickN(rng, keys, "absent")}
	case 1: // user, eq or in
		if rng.Intn(2) == 0 {
			return wire.Predicate{Col: "user", Op: wire.PredEq, Value: pick(rng, users, "nobody")}
		}
		return wire.Predicate{Col: "user", Op: wire.PredIn, Values: pickN(rng, users, "nobody")}
	case 2: // certain/belief ordered comparison or prefix
		col := "certain"
		if rng.Intn(2) == 0 {
			col = "belief"
		}
		if rng.Intn(4) == 0 {
			return wire.Predicate{Col: col, Op: wire.PredPrefix, Value: []string{"", "f", "k", "c"}[rng.Intn(4)]}
		}
		return wire.Predicate{Col: col, Op: ordOps[rng.Intn(len(ordOps))], Value: fuzzDomain[rng.Intn(len(fuzzDomain))]}
	case 3: // certain in-list
		return wire.Predicate{Col: "certain", Op: wire.PredIn, Values: pickN(rng, fuzzDomain, "")}
	case 4: // boolean eq/ne, sometimes with the implicit-true operand
		p := wire.Predicate{Col: boolCols[rng.Intn(len(boolCols))], Op: wire.PredEq}
		if rng.Intn(2) == 0 {
			p.Op = wire.PredNe
		}
		if rng.Intn(3) > 0 {
			p.Value = rng.Intn(2) == 0
		}
		return p
	case 5: // possible_count comparison or in-list
		if rng.Intn(4) == 0 {
			return wire.Predicate{Col: "possible_count", Op: wire.PredIn, Values: []any{rng.Intn(3), rng.Intn(5)}}
		}
		return wire.Predicate{Col: "possible_count", Op: ordOps[rng.Intn(len(ordOps))], Value: rng.Intn(5)}
	case 6: // possible membership
		return wire.Predicate{Col: "possible", Op: wire.PredContains, Value: fuzzDomain[rng.Intn(len(fuzzDomain)-1)]}
	default: // cross-column comparison of like kinds
		if rng.Intn(2) == 0 {
			strCols := []string{"object", "user", "certain", "belief"}
			a, b := rng.Intn(len(strCols)), rng.Intn(len(strCols))
			return wire.Predicate{Col: strCols[a], Op: ordOps[rng.Intn(len(ordOps))], ColB: strCols[b]}
		}
		a, b := rng.Intn(len(boolCols)), rng.Intn(len(boolCols))
		op := wire.PredEq
		if rng.Intn(2) == 0 {
			op = wire.PredNe
		}
		return wire.Predicate{Col: boolCols[a], Op: op, ColB: boolCols[b]}
	}
}

func pick(rng *rand.Rand, pool []string, extra string) string {
	if rng.Intn(6) == 0 {
		return extra
	}
	return pool[rng.Intn(len(pool))]
}

func pickN(rng *rand.Rand, pool []string, extra string) []any {
	n := 1 + rng.Intn(3)
	out := make([]any, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, pick(rng, pool, extra))
	}
	return out
}

// prefixRight rewrites a base predicate to touch the join's right side.
func prefixRight(rng *rand.Rand, p wire.Predicate) wire.Predicate {
	if p.ColB != "" {
		// Prefix one or both sides; each combination is valid.
		if rng.Intn(2) == 0 {
			p.Col = "r_" + p.Col
		}
		if rng.Intn(2) == 0 || (p.Col[:2] != "r_") {
			p.ColB = "r_" + p.ColB
		}
		return p
	}
	p.Col = "r_" + p.Col
	return p
}

// scalarCols lists the scalar row columns, with r_ twins when joined.
func scalarCols(joined bool) []string {
	base := []string{
		"object", "user", "certain", "belief", "possible_count",
		"has_certain", "has_belief", "agrees", "disagrees", "conflicted",
	}
	if !joined {
		return base
	}
	out := append([]string{}, base...)
	for _, c := range base {
		out = append(out, "r_"+c)
	}
	return out
}

// randQuery draws one valid query pattern.
func randQuery(rng *rand.Rand, users, keys []string) wire.Query {
	var q wire.Query
	joined := rng.Intn(5) == 0
	if joined {
		j := &wire.Join{On: []string{"object"}}
		if rng.Intn(3) == 0 {
			j.On = append(j.On, "certain")
		}
		for i := rng.Intn(2); i > 0; i-- {
			j.Where = append(j.Where, randBasePred(rng, users, keys))
		}
		q.Join = j
	}
	for i := rng.Intn(4); i > 0; i-- {
		p := randBasePred(rng, users, keys)
		if joined && rng.Intn(3) == 0 {
			p = prefixRight(rng, p)
		}
		q.Where = append(q.Where, p)
	}

	if rng.Intn(3) == 0 {
		// Aggregate shape: group by 0-2 scalar columns, 1-3 aggregates
		// with explicit unique names, optional having and order.
		cols := scalarCols(joined)
		seen := map[string]bool{}
		for i := rng.Intn(3); i > 0; i-- {
			c := cols[rng.Intn(len(cols))]
			if !seen[c] {
				seen[c] = true
				q.GroupBy = append(q.GroupBy, c)
			}
		}
		kinds := []wire.Aggregate{
			{Fn: wire.AggCount},
			{Fn: wire.AggSum, Of: "possible_count"},
			{Fn: wire.AggAvg, Of: "possible_count"},
			{Fn: wire.AggRate, Of: "agrees"},
			{Fn: wire.AggRate, Of: "disagrees"},
			{Fn: wire.AggMin, Of: "certain"},
			{Fn: wire.AggMax, Of: "certain"},
			{Fn: wire.AggMin, Of: "possible_count"},
			{Fn: wire.AggMax, Of: "possible_count"},
			{Fn: wire.AggSum, Of: "conflicted"},
		}
		n := 1 + rng.Intn(3)
		names := []string{"a0", "a1", "a2"}
		numeric := map[string]bool{}
		for i := 0; i < n; i++ {
			a := kinds[rng.Intn(len(kinds))]
			a.As = names[i]
			q.Aggs = append(q.Aggs, a)
			numeric[a.As] = !(a.Fn == wire.AggMin || a.Fn == wire.AggMax) || a.Of == "possible_count"
		}
		if rng.Intn(3) == 0 {
			ordOps := []string{wire.PredEq, wire.PredNe, wire.PredLt, wire.PredLe, wire.PredGt, wire.PredGe}
			name := names[rng.Intn(n)]
			h := wire.Predicate{Col: name, Op: ordOps[rng.Intn(len(ordOps))]}
			if numeric[name] {
				h.Value = rng.Intn(6)
			} else {
				h.Value = fuzzDomain[rng.Intn(len(fuzzDomain))]
			}
			q.Having = append(q.Having, h)
		}
		if rng.Intn(2) == 0 {
			outs := append(append([]string{}, q.GroupBy...), names[:n]...)
			q.OrderBy = append(q.OrderBy, wire.OrderKey{Col: outs[rng.Intn(len(outs))], Desc: rng.Intn(2) == 0})
		}
	} else if rng.Intn(2) == 0 {
		// Explicit projection with optional order keys drawn from it.
		cols := scalarCols(joined)
		n := 1 + rng.Intn(4)
		seen := map[string]bool{}
		for i := 0; i < n; i++ {
			c := cols[rng.Intn(len(cols))]
			if !seen[c] {
				seen[c] = true
				q.Select = append(q.Select, c)
			}
		}
		for i := rng.Intn(3); i > 0; i-- {
			q.OrderBy = append(q.OrderBy, wire.OrderKey{Col: q.Select[rng.Intn(len(q.Select))], Desc: rng.Intn(2) == 0})
		}
	}
	if rng.Intn(3) == 0 {
		q.Limit = rng.Intn(12)
	}
	return q
}

func FuzzQueryPlanParity(f *testing.F) {
	st, users, keys, rows := fuzzFixture(f)
	for seed := int64(0); seed < 32; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		q := randQuery(rng, users, keys)
		greedyPlan, err := query.Compile(q)
		if err != nil {
			t.Fatalf("generator drew an invalid query %+v: %v", q, err)
		}
		naivePlan, err := query.CompileNaive(q)
		if err != nil {
			t.Fatalf("naive rejected what greedy accepted %+v: %v", q, err)
		}
		ctx := context.Background()
		greedy, err := query.Run(ctx, st, greedyPlan)
		if err != nil {
			t.Fatalf("Run(greedy): %v", err)
		}
		naive, err := query.Run(ctx, st, naivePlan)
		if err != nil {
			t.Fatalf("Run(naive): %v", err)
		}
		wantCols, wantRows := oracleRun(rows, q)
		if !reflect.DeepEqual(greedy.Columns, wantCols) || !reflect.DeepEqual(naive.Columns, wantCols) {
			t.Fatalf("columns diverge on %+v:\n greedy %v\n naive %v\n oracle %v", q, greedy.Columns, naive.Columns, wantCols)
		}
		if !rowsEqual(greedy.Rows, wantRows) {
			t.Fatalf("greedy diverges from oracle on %+v:\n greedy: %v\n oracle: %v", q, greedy.Rows, wantRows)
		}
		if !rowsEqual(naive.Rows, wantRows) {
			t.Fatalf("naive diverges from oracle on %+v:\n naive: %v\n oracle: %v", q, naive.Rows, wantRows)
		}
	})
}
