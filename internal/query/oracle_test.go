package query_test

// The brute-force oracle: materialize every (object, user) row of the
// resolutions relation, then evaluate a wire.Query over the material —
// no planner, no pushdown, no streaming. Parity tests and the fuzzer
// hold both compiled plans (greedy and naive) to this reference.

import (
	"context"
	"sort"
	"strconv"
	"strings"
	"testing"

	"trustmap/internal/query"
	"trustmap/wire"
)

// orow is one materialized tuple: column name -> value, in the same
// dynamic types the executor produces.
type orow map[string]any

// materialize builds the full resolutions relation of a site in scan
// order: objects by key (the Resolved stream order), users sorted.
func materialize(t testing.TB, site query.Site) []orow {
	t.Helper()
	users := append([]string{}, site.Users()...)
	sort.Strings(users)
	var rows []orow
	for or, err := range site.Resolved(context.Background()) {
		if err != nil {
			t.Fatalf("materialize: %v", err)
		}
		beliefs, _ := site.Object(or.Object)
		for _, u := range users {
			possible, certain, err := or.Lookup(u)
			if err != nil {
				continue
			}
			r := orow{
				"object":         or.Object,
				"user":           u,
				"certain":        certain,
				"possible":       possible,
				"possible_count": len(possible),
				"has_certain":    certain != "",
				"conflicted":     len(possible) > 1,
			}
			b, stated := beliefs[u]
			r["belief"], r["has_belief"] = b, stated
			r["agrees"] = stated && certain != "" && b == certain
			r["disagrees"] = stated && certain != "" && b != certain
			rows = append(rows, r)
		}
	}
	return rows
}

// oNum widens the numeric shapes that appear in rows and operands.
func oNum(v any) float64 {
	switch n := v.(type) {
	case float64:
		return n
	case float32:
		return float64(n)
	case int:
		return float64(n)
	case int64:
		return float64(n)
	case uint64:
		return float64(n)
	case bool:
		if n {
			return 1
		}
		return 0
	}
	return 0
}

// oCmp three-way-compares two scalar values; nil sorts first.
func oCmp(a, b any) int {
	if a == nil || b == nil {
		switch {
		case a == nil && b == nil:
			return 0
		case a == nil:
			return -1
		}
		return 1
	}
	if as, ok := a.(string); ok {
		return strings.Compare(as, b.(string))
	}
	if ab, ok := a.(bool); ok {
		bb := b.(bool)
		switch {
		case ab == bb:
			return 0
		case !ab:
			return -1
		}
		return 1
	}
	fa, fb := oNum(a), oNum(b)
	switch {
	case fa < fb:
		return -1
	case fa > fb:
		return 1
	}
	return 0
}

func oOrdOK(c int, op string) bool {
	switch op {
	case wire.PredEq:
		return c == 0
	case wire.PredNe:
		return c != 0
	case wire.PredLt:
		return c < 0
	case wire.PredLe:
		return c <= 0
	case wire.PredGt:
		return c > 0
	case wire.PredGe:
		return c >= 0
	}
	return false
}

// oPred evaluates one wire predicate on a materialized tuple.
func oPred(r orow, p wire.Predicate) bool {
	v := r[p.Col]
	if v == nil && p.ColB == "" {
		return false // an empty-group min/max in having
	}
	if p.ColB != "" {
		w := r[p.ColB]
		if v == nil || w == nil {
			return false
		}
		return oOrdOK(oCmp(v, w), p.Op)
	}
	switch t := v.(type) {
	case []string:
		for _, s := range t {
			if s == p.Value.(string) {
				return true
			}
		}
		return false
	case bool:
		want := true
		if p.Value != nil {
			want = p.Value.(bool)
		}
		if p.Op == wire.PredEq {
			return t == want
		}
		return t != want
	case string:
		switch p.Op {
		case wire.PredIn:
			for _, e := range p.Values {
				if t == e.(string) {
					return true
				}
			}
			return false
		case wire.PredPrefix:
			return strings.HasPrefix(t, p.Value.(string))
		default:
			return oOrdOK(strings.Compare(t, p.Value.(string)), p.Op)
		}
	default:
		f := oNum(v)
		if p.Op == wire.PredIn {
			for _, e := range p.Values {
				if f == oNum(e) {
					return true
				}
			}
			return false
		}
		return oOrdOK(oCmp(f, oNum(p.Value)), p.Op)
	}
}

func oPreds(r orow, preds []wire.Predicate) bool {
	for _, p := range preds {
		if !oPred(r, p) {
			return false
		}
	}
	return true
}

// oracleRun evaluates q over the materialized relation and returns the
// output columns and rows; q must be a query Compile accepts.
func oracleRun(rows []orow, q wire.Query) ([]string, [][]any) {
	// Split where: r_-prefixed predicates evaluate post-join.
	var pre, post []wire.Predicate
	for _, p := range q.Where {
		if strings.HasPrefix(p.Col, "r_") || strings.HasPrefix(p.ColB, "r_") {
			post = append(post, p)
		} else {
			pre = append(pre, p)
		}
	}

	// Filter (and join) in scan order.
	var tuples []orow
	if q.Join == nil {
		for _, r := range rows {
			if oPreds(r, pre) {
				tuples = append(tuples, r)
			}
		}
	} else {
		var extraOn []string
		for _, c := range q.Join.On {
			if c != "object" {
				extraOn = append(extraOn, c)
			}
		}
		// Per-object blocks, in scan order; rows are already grouped by
		// object because materialize emits objects contiguously.
		for i := 0; i < len(rows); {
			j := i
			for j < len(rows) && rows[j]["object"] == rows[i]["object"] {
				j++
			}
			block := rows[i:j]
			i = j
			for _, l := range block {
				if !oPreds(l, pre) {
					continue
				}
				for _, r := range block {
					if !oPreds(r, q.Join.Where) {
						continue
					}
					match := true
					for _, c := range extraOn {
						if oCmp(l[c], r[c]) != 0 {
							match = false
							break
						}
					}
					if !match {
						continue
					}
					m := orow{}
					for k, v := range l {
						m[k] = v
					}
					for k, v := range r {
						m["r_"+k] = v
					}
					if oPreds(m, post) {
						tuples = append(tuples, m)
					}
				}
			}
		}
	}

	// Aggregation.
	if len(q.Aggs) > 0 {
		type group struct {
			keyVals []any
			rows    []orow
		}
		var order []*group
		index := map[string]*group{}
		for _, r := range tuples {
			var b strings.Builder
			vals := make([]any, len(q.GroupBy))
			for i, c := range q.GroupBy {
				vals[i] = r[c]
				b.WriteString(strings.ReplaceAll(formatKey(r[c]), "\x00", ""))
				b.WriteByte(0)
			}
			g := index[b.String()]
			if g == nil {
				g = &group{keyVals: vals}
				index[b.String()] = g
				order = append(order, g)
			}
			g.rows = append(g.rows, r)
		}
		if len(q.GroupBy) == 0 && len(order) == 0 {
			order = append(order, &group{})
		}
		sort.SliceStable(order, func(i, j int) bool {
			for c := range q.GroupBy {
				cmp := oCmp(order[i].keyVals[c], order[j].keyVals[c])
				if cmp != 0 {
					return cmp < 0
				}
			}
			return false
		})

		var outCols []string
		outCols = append(outCols, q.GroupBy...)
		aggNames := make([]string, len(q.Aggs))
		for i, a := range q.Aggs {
			name := a.As
			if name == "" {
				name = a.Fn
				if a.Of != "" {
					name = a.Fn + "_" + a.Of
				}
			}
			aggNames[i] = name
			outCols = append(outCols, name)
		}

		var gtuples []orow
		for _, g := range order {
			out := orow{}
			for i, c := range q.GroupBy {
				out[c] = g.keyVals[i]
			}
			for i, a := range q.Aggs {
				out[aggNames[i]] = oracleAgg(a, g.rows)
			}
			if oPreds(out, q.Having) {
				gtuples = append(gtuples, out)
			}
		}
		sel := q.Select
		if len(sel) == 0 {
			sel = outCols
		}
		return project(gtuples, sel, q.OrderBy, q.Limit)
	}

	sel := q.Select
	if len(sel) == 0 {
		switch {
		case q.Join != nil:
			sel = []string{"object", "user", "certain", "r_user", "r_certain"}
		default:
			sel = []string{"object", "user", "certain", "belief", "possible_count"}
		}
	}
	return project(tuples, sel, q.OrderBy, q.Limit)
}

// formatKey renders a group-key value for the oracle's group index.
func formatKey(v any) string {
	switch t := v.(type) {
	case string:
		return "s" + t
	case bool:
		if t {
			return "bt"
		}
		return "bf"
	}
	return "n" + strconv.FormatFloat(oNum(v), 'g', -1, 64)
}

// oracleAgg computes one aggregate directly over a group's rows.
func oracleAgg(a wire.Aggregate, rows []orow) any {
	switch a.Fn {
	case wire.AggCount:
		return int64(len(rows))
	case wire.AggSum:
		var s float64
		for _, r := range rows {
			s += oNum(r[a.Of])
		}
		return s
	case wire.AggAvg, wire.AggRate:
		if len(rows) == 0 {
			return float64(0)
		}
		var s float64
		for _, r := range rows {
			s += oNum(r[a.Of])
		}
		return s / float64(len(rows))
	case wire.AggMin:
		var mm any
		for _, r := range rows {
			if v := r[a.Of]; mm == nil || oCmp(v, mm) < 0 {
				mm = v
			}
		}
		return mm
	case wire.AggMax:
		var mm any
		for _, r := range rows {
			if v := r[a.Of]; mm == nil || oCmp(v, mm) > 0 {
				mm = v
			}
		}
		return mm
	}
	return nil
}

// project selects, orders (stably), and limits tuples.
func project(tuples []orow, sel []string, orderBy []wire.OrderKey, limit int) ([]string, [][]any) {
	out := make([][]any, len(tuples))
	for i, r := range tuples {
		vals := make([]any, len(sel))
		for j, c := range sel {
			vals[j] = r[c]
		}
		out[i] = vals
	}
	if len(orderBy) > 0 {
		idx := map[string]int{}
		for j, c := range sel {
			if _, ok := idx[c]; !ok {
				idx[c] = j
			}
		}
		sort.SliceStable(out, func(i, j int) bool {
			for _, ok := range orderBy {
				c := oCmp(out[i][idx[ok.Col]], out[j][idx[ok.Col]])
				if c == 0 {
					continue
				}
				if ok.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return append([]string{}, sel...), out
}
