// Package query is the streaming relational layer between resolution
// and serving: filter / project / self-join / group-aggregate / order /
// limit operators composed over the store's pinned-epoch resolution
// stream, so callers can ask the paper's audit questions — objects
// where k users disagree with their resolved value, per-user acceptance
// rates, conflict hot-spots — without materializing the store.
//
// Queries arrive as a wire.Query pattern AST (wire schema 6) over one
// relation, "resolutions": one row per (stored object, reporting user)
// with the columns documented on wire.Query. Compile turns the AST into
// a Plan with greedy predicate ordering (janus-datalog's "when greedy
// beats optimal" discipline: selectivity is visible in the pattern
// syntax, so no statistics are needed):
//
//   - object key equality/membership is extracted as a key pushdown —
//     point resolutions instead of a scan, and provably-empty key sets
//     terminate before touching the store;
//   - user equality/membership restricts the per-object user loop;
//   - remaining filters run value-equality first, then membership, then
//     residual comparisons, then cross-column comparisons — stably, so
//     equal-class predicates keep their written order.
//
// Run executes a Plan against a Site — one store, or a cluster router
// whose Resolved stream is already a key-ordered merge at per-shard
// pinned epochs. Aggregate plans also decompose: RunPartial produces a
// per-shard partial aggregation (all aggregate functions are chosen to
// merge exactly: count/sum/min/max directly, avg/rate as (sum, count)
// pairs) and Finalize merges partials in deterministic group-key order,
// which is how a cluster scatter-gathers a grouped query without
// shipping rows.
//
// The belief column is read from the live explicit-belief table
// (Site.Object) rather than the pinned snapshot: under concurrent
// writes a row's belief may be one write fresher than its resolution,
// the same per-shard-epoch consistency the rest of the read surface
// offers.
package query

import (
	"context"
	"errors"
	"iter"

	"trustmap"
)

// ErrBadQuery wraps every compile-time rejection of a wire.Query —
// unknown columns, operand/kind mismatches, invalid operators — so the
// HTTP layer can map exactly these to 400 and keep runtime failures 5xx.
var ErrBadQuery = errors.New("invalid query")

// Site is the surface a Plan executes against: the pinned-epoch scan,
// point resolution for key pushdowns, the explicit-belief table for the
// belief column, and the user universe of the shared spine. It is
// implemented by *trustmap.Store and by the cluster router (whose
// Resolved is the key-ordered k-way merge over shards).
type Site interface {
	// Resolved streams every stored object's resolution in sorted key
	// order at a pinned epoch (per shard, on a cluster).
	Resolved(ctx context.Context) iter.Seq2[trustmap.ObjectRow, error]
	// ResolveObject resolves one stored object; unknown keys answer an
	// error wrapping trustmap.ErrUnknownObject.
	ResolveObject(ctx context.Context, key string) (trustmap.ObjectRow, error)
	// Object reads one stored object's explicit beliefs.
	Object(key string) (map[string]string, bool)
	// Users lists every user of the trust network.
	Users() []string
	// Epoch is the current published generation — the epoch reported
	// when a query consumed no rows.
	Epoch() uint64
}

// Columns of the resolutions relation. The catalog (baseKinds) is the
// single source of truth the planner validates every AST column against.
const (
	// ColObject is the stored object's key.
	ColObject = "object"
	// ColUser is the reporting user.
	ColUser = "user"
	// ColCertain is the user's resolved value, "" when not certain.
	ColCertain = "certain"
	// ColBelief is the user's explicit stated belief, "" when none.
	ColBelief = "belief"
	// ColPossible is the user's possible-value set, sorted.
	ColPossible = "possible"
	// ColPossibleCount is len(possible).
	ColPossibleCount = "possible_count"
	// ColHasCertain reports certain != "".
	ColHasCertain = "has_certain"
	// ColHasBelief reports whether the user stated an explicit belief.
	ColHasBelief = "has_belief"
	// ColAgrees reports the user's stated belief survived resolution.
	ColAgrees = "agrees"
	// ColDisagrees reports the user's stated belief was overridden by a
	// different certain value — the paper's rejected-update signal.
	ColDisagrees = "disagrees"
	// ColConflicted reports the user sees more than one possible value.
	ColConflicted = "conflicted"
)

// kind is a column's value type; every predicate, aggregate, and order
// key is validated against it at compile time.
type kind int

const (
	kindString  kind = iota // string
	kindInt                 // int
	kindBool                // bool
	kindFloat               // float64 (aggregate outputs only)
	kindStrings             // []string (the possible column)
)

// baseKinds is the column catalog of the resolutions relation.
var baseKinds = map[string]kind{
	ColObject:        kindString,
	ColUser:          kindString,
	ColCertain:       kindString,
	ColBelief:        kindString,
	ColPossible:      kindStrings,
	ColPossibleCount: kindInt,
	ColHasCertain:    kindBool,
	ColHasBelief:     kindBool,
	ColAgrees:        kindBool,
	ColDisagrees:     kindBool,
	ColConflicted:    kindBool,
}

// baseOrder lists the catalog columns in presentation order (map
// iteration is random; defaults and the r_ twin space must not be).
var baseOrder = []string{
	ColObject, ColUser, ColCertain, ColBelief, ColPossible,
	ColPossibleCount, ColHasCertain, ColHasBelief, ColAgrees,
	ColDisagrees, ColConflicted,
}

// rightPrefix marks right-side columns of a joined row: r_user is the
// joined partner's user, r_certain their resolved value, and so on.
const rightPrefix = "r_"

// row is one tuple of the resolutions relation.
type row struct {
	object        string
	user          string
	certain       string
	belief        string
	possible      []string
	possibleCount int
	hasCertain    bool
	hasBelief     bool
	agrees        bool
	disagrees     bool
	conflicted    bool
}

// value reads one catalog column off the row.
func (r *row) value(col string) any {
	switch col {
	case ColObject:
		return r.object
	case ColUser:
		return r.user
	case ColCertain:
		return r.certain
	case ColBelief:
		return r.belief
	case ColPossible:
		return r.possible
	case ColPossibleCount:
		return r.possibleCount
	case ColHasCertain:
		return r.hasCertain
	case ColHasBelief:
		return r.hasBelief
	case ColAgrees:
		return r.agrees
	case ColDisagrees:
		return r.disagrees
	case ColConflicted:
		return r.conflicted
	}
	return nil
}

// makeRow builds the relation row for one (object, user) pair from the
// pinned resolution and the object's explicit-belief table; ok is false
// when the user is unknown to the network (no row exists).
func makeRow(or trustmap.ObjectRow, beliefs map[string]string, user string) (row, bool) {
	possible, certain, err := or.Lookup(user)
	if err != nil {
		return row{}, false
	}
	r := row{
		object:        or.Object,
		user:          user,
		certain:       certain,
		possible:      possible,
		possibleCount: len(possible),
		hasCertain:    certain != "",
		conflicted:    len(possible) > 1,
	}
	if b, ok := beliefs[user]; ok {
		r.belief, r.hasBelief = b, true
	}
	r.agrees = r.hasBelief && r.hasCertain && r.belief == r.certain
	r.disagrees = r.hasBelief && r.hasCertain && r.belief != r.certain
	return r, true
}
