package query_test

// Parity and behavior tests for the streaming query layer: every query
// runs three ways — greedy plan, naive left-to-right plan, brute-force
// oracle over the materialized relation — and all three must agree
// exactly (columns, rows, order) on the paper's workload families.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"trustmap"
	"trustmap/internal/query"
	"trustmap/internal/tn"
	"trustmap/internal/workload"
	"trustmap/wire"
)

// facadeFromTN rebuilds a workload network through the public facade
// (the unexported twin of the root package's test helper).
func facadeFromTN(src *tn.Network) *trustmap.Network {
	n := trustmap.New()
	for x := 0; x < src.NumUsers(); x++ {
		n.AddUser(src.Name(x))
	}
	for x := 0; x < src.NumUsers(); x++ {
		for _, m := range src.In(x) {
			n.AddTrust(src.Name(x), src.Name(m.Parent), m.Priority)
		}
	}
	for x := 0; x < src.NumUsers(); x++ {
		if src.HasExplicit(x) {
			n.SetBelief(src.Name(x), string(src.Explicit(x)))
		}
	}
	return n
}

// workloadStore builds a store over one workload network with a
// deterministic object set, returning the store and its sorted users.
func workloadStore(t testing.TB, src *tn.Network, objects int) (*trustmap.Store, []string) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	var rootIDs []int
	for x := 0; x < src.NumUsers(); x++ {
		if src.HasExplicit(x) {
			rootIDs = append(rootIDs, x)
		}
	}
	objs := workload.BulkObjects(rng, rootIDs, objects)
	named := make(map[string]map[string]string, len(objs))
	for k, bs := range objs {
		m := make(map[string]string, len(bs))
		for id, v := range bs {
			m[src.Name(id)] = string(v)
		}
		named[k] = m
	}
	roots := make([]string, len(rootIDs))
	for i, id := range rootIDs {
		roots[i] = src.Name(id)
	}
	st, err := facadeFromTN(src).NewStore(trustmap.WithWorkers(2), trustmap.WithExtraRoots(roots...))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	keys := make([]string, 0, len(named))
	for k := range named {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := st.PutObject(ctx, k, named[k]); err != nil {
			t.Fatal(err)
		}
	}
	users := append([]string{}, st.Users()...)
	sort.Strings(users)
	return st, users
}

// parityWorkloads builds the three acceptance workloads.
func parityWorkloads() map[string]*tn.Network {
	domain := []tn.Value{"fish", "knot", "cow", "jar"}
	ws := map[string]*tn.Network{
		"PowerLaw":  workload.PowerLaw(rand.New(rand.NewSource(3)), 150, 3, 0.15, domain),
		"NestedSCC": workload.NestedSCC(4),
	}
	fig19, _ := workload.Fig19()
	ws["Fig19"] = fig19
	return ws
}

// runThreeWays executes q greedy, naive, and brute-force, requiring
// exact agreement, and returns the greedy result.
func runThreeWays(t *testing.T, st *trustmap.Store, rows []orow, q wire.Query) *query.Result {
	t.Helper()
	ctx := context.Background()
	greedyPlan, err := query.Compile(q)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	naivePlan, err := query.CompileNaive(q)
	if err != nil {
		t.Fatalf("CompileNaive: %v", err)
	}
	greedy, err := query.Run(ctx, st, greedyPlan)
	if err != nil {
		t.Fatalf("Run(greedy): %v", err)
	}
	naive, err := query.Run(ctx, st, naivePlan)
	if err != nil {
		t.Fatalf("Run(naive): %v", err)
	}
	wantCols, wantRows := oracleRun(rows, q)
	if !reflect.DeepEqual(greedy.Columns, wantCols) {
		t.Fatalf("greedy columns %v, oracle %v", greedy.Columns, wantCols)
	}
	if !reflect.DeepEqual(naive.Columns, wantCols) {
		t.Fatalf("naive columns %v, oracle %v", naive.Columns, wantCols)
	}
	if !rowsEqual(greedy.Rows, wantRows) {
		t.Fatalf("greedy rows diverge from oracle:\n greedy: %v\n oracle: %v", greedy.Rows, wantRows)
	}
	if !rowsEqual(naive.Rows, wantRows) {
		t.Fatalf("naive rows diverge from oracle:\n naive: %v\n oracle: %v", naive.Rows, wantRows)
	}
	return greedy
}

// rowsEqual compares result rows, treating nil and empty as equal at
// the slice level (zero matching rows).
func rowsEqual(a, b [][]any) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// parityQueries is the feature-covering query list, parameterized by a
// workload's users and object keys.
func parityQueries(users, keys []string) []wire.Query {
	u0, uLast := users[0], users[len(users)-1]
	k0 := keys[0]
	return []wire.Query{
		// Full scan, default projection.
		{},
		// Key pushdown: point lookup.
		{Where: []wire.Predicate{{Col: "object", Op: wire.PredEq, Value: k0}}},
		// Key intersection (in ∩ eq) plus a residual filter.
		{Where: []wire.Predicate{
			{Col: "object", Op: wire.PredIn, Values: []any{k0, keys[len(keys)-1], "absent"}},
			{Col: "object", Op: wire.PredEq, Value: k0},
			{Col: "has_certain", Op: wire.PredEq},
		}},
		// Pushed key that is not stored: zero rows, no scan.
		{Where: []wire.Predicate{{Col: "object", Op: wire.PredEq, Value: "no-such-object"}}},
		// User pushdown with a boolean filter.
		{Where: []wire.Predicate{
			{Col: "user", Op: wire.PredEq, Value: u0},
			{Col: "conflicted", Op: wire.PredEq},
		}},
		// Greedy reorder bait: residual comparison written before an
		// equality — plans differ, answers must not.
		{Where: []wire.Predicate{
			{Col: "possible_count", Op: wire.PredGe, Value: 1},
			{Col: "certain", Op: wire.PredEq, Value: "fish"},
			{Col: "user", Op: wire.PredIn, Values: []any{u0, uLast}},
		}},
		// Set membership and ne.
		{Where: []wire.Predicate{
			{Col: "certain", Op: wire.PredIn, Values: []any{"fish", "cow"}},
			{Col: "user", Op: wire.PredNe, Value: u0},
		}},
		// Cross-column comparison: stated belief overridden.
		{Where: []wire.Predicate{
			{Col: "has_belief", Op: wire.PredEq},
			{Col: "belief", Op: wire.PredNe, ColB: "certain"},
		}},
		// possible membership and key prefix.
		{Where: []wire.Predicate{
			{Col: "possible", Op: wire.PredContains, Value: "fish"},
			{Col: "object", Op: wire.PredPrefix, Value: "obj"},
		}},
		// Grouped aggregate with having, explicit names.
		{
			Where:   []wire.Predicate{{Col: "disagrees", Op: wire.PredEq}},
			GroupBy: []string{"object"},
			Aggs: []wire.Aggregate{
				{Fn: wire.AggCount, As: "dissenters"},
				{Fn: wire.AggAvg, Of: "possible_count"},
			},
			Having: []wire.Predicate{{Col: "dissenters", Op: wire.PredGe, Value: 1}},
		},
		// Global aggregate, every function at once.
		{Aggs: []wire.Aggregate{
			{Fn: wire.AggCount},
			{Fn: wire.AggSum, Of: "possible_count"},
			{Fn: wire.AggMin, Of: "certain"},
			{Fn: wire.AggMax, Of: "possible_count"},
			{Fn: wire.AggRate, Of: "has_certain"},
		}},
		// Global aggregate over provably zero rows (empty key set).
		{
			Where: []wire.Predicate{
				{Col: "object", Op: wire.PredEq, Value: k0},
				{Col: "object", Op: wire.PredEq, Value: "different"},
			},
			Aggs: []wire.Aggregate{{Fn: wire.AggCount}, {Fn: wire.AggMin, Of: "certain"}},
		},
		// Per-user acceptance rate, ordered, limited.
		{
			GroupBy: []string{"user"},
			Aggs:    []wire.Aggregate{{Fn: wire.AggRate, Of: "agrees", As: "acceptance"}},
			OrderBy: []wire.OrderKey{{Col: "acceptance", Desc: true}, {Col: "user"}},
			Limit:   5,
		},
		// Two-column grouping.
		{
			GroupBy: []string{"certain", "conflicted"},
			Aggs:    []wire.Aggregate{{Fn: wire.AggCount}},
		},
		// Self-join: who disagrees with u0's resolved value, per object.
		{
			Where: []wire.Predicate{
				{Col: "user", Op: wire.PredEq, Value: u0},
				{Col: "has_certain", Op: wire.PredEq},
				{Col: "r_certain", Op: wire.PredNe, ColB: "certain"},
			},
			Join: &wire.Join{
				On:    []string{"object"},
				Where: []wire.Predicate{{Col: "has_certain", Op: wire.PredEq}},
			},
		},
		// Join on an extra column with explicit projection and order.
		{
			Join: &wire.Join{
				On:    []string{"object", "certain"},
				Where: []wire.Predicate{{Col: "user", Op: wire.PredNe, Value: u0}},
			},
			Where:   []wire.Predicate{{Col: "user", Op: wire.PredEq, Value: u0}},
			Select:  []string{"object", "r_user", "certain"},
			OrderBy: []wire.OrderKey{{Col: "r_user"}},
			Limit:   20,
		},
		// Joined aggregate: per-object count of agreeing pairs.
		{
			Join:    &wire.Join{On: []string{"object", "certain"}},
			Where:   []wire.Predicate{{Col: "has_certain", Op: wire.PredEq}},
			GroupBy: []string{"object"},
			Aggs:    []wire.Aggregate{{Fn: wire.AggCount, As: "pairs"}},
		},
		// Row order + limit (no early stop: order forces a full scan).
		{
			Where:   []wire.Predicate{{Col: "has_certain", Op: wire.PredEq}},
			Select:  []string{"object", "user", "possible_count"},
			OrderBy: []wire.OrderKey{{Col: "possible_count", Desc: true}, {Col: "object"}, {Col: "user"}},
			Limit:   7,
		},
		// Limit without order: early termination, prefix of scan order.
		{Limit: 9},
	}
}

func TestQueryParityWorkloads(t *testing.T) {
	for name, src := range parityWorkloads() {
		t.Run(name, func(t *testing.T) {
			st, users := workloadStore(t, src, 25)
			rows := materialize(t, st)
			keys := st.Objects()
			for i, q := range parityQueries(users, keys) {
				t.Run(fmt.Sprintf("q%02d", i), func(t *testing.T) {
					runThreeWays(t, st, rows, q)
				})
			}
		})
	}
}

// TestQueryPushdownStats checks the planner's visible work accounting:
// point lookups instead of scans, provably-empty early termination, and
// the reorder counter.
func TestQueryPushdownStats(t *testing.T) {
	fig19, _ := workload.Fig19()
	st, users := workloadStore(t, fig19, 12)
	keys := st.Objects()
	ctx := context.Background()

	t.Run("key lookup", func(t *testing.T) {
		p, err := query.Compile(wire.Query{Where: []wire.Predicate{{Col: "object", Op: wire.PredEq, Value: keys[0]}}})
		if err != nil {
			t.Fatal(err)
		}
		res, err := query.Run(ctx, st, p)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.KeyLookups != 1 {
			t.Fatalf("KeyLookups = %d, want 1", res.Stats.KeyLookups)
		}
		if res.Stats.RowsScanned != uint64(len(users)) {
			t.Fatalf("RowsScanned = %d, want %d (one object's users)", res.Stats.RowsScanned, len(users))
		}
	})

	t.Run("provably empty keys", func(t *testing.T) {
		p, err := query.Compile(wire.Query{Where: []wire.Predicate{
			{Col: "object", Op: wire.PredEq, Value: keys[0]},
			{Col: "object", Op: wire.PredEq, Value: keys[1]},
		}})
		if err != nil {
			t.Fatal(err)
		}
		res, err := query.Run(ctx, st, p)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Stats.EarlyTerminated || res.Stats.RowsScanned != 0 || res.Stats.KeyLookups != 0 {
			t.Fatalf("want zero-work early termination, got %+v", res.Stats)
		}
		if res.Epoch != st.Epoch() {
			t.Fatalf("empty query epoch %d, want current %d", res.Epoch, st.Epoch())
		}
	})

	t.Run("provably empty users", func(t *testing.T) {
		p, err := query.Compile(wire.Query{Where: []wire.Predicate{
			{Col: "user", Op: wire.PredEq, Value: users[0]},
			{Col: "user", Op: wire.PredIn, Values: []any{users[1]}},
		}})
		if err != nil {
			t.Fatal(err)
		}
		res, err := query.Run(ctx, st, p)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Stats.EarlyTerminated || res.Stats.RowsScanned != 0 {
			t.Fatalf("want zero-work early termination, got %+v", res.Stats)
		}
	})

	t.Run("reorder counter", func(t *testing.T) {
		q := wire.Query{Where: []wire.Predicate{
			{Col: "possible_count", Op: wire.PredGe, Value: 1},
			{Col: "certain", Op: wire.PredEq, Value: "fish"},
		}}
		greedy, err := query.Compile(q)
		if err != nil {
			t.Fatal(err)
		}
		if greedy.Reordered() == 0 {
			t.Fatal("greedy plan should count the equality moved ahead of the residual")
		}
		naive, err := query.CompileNaive(q)
		if err != nil {
			t.Fatal(err)
		}
		if naive.Reordered() != 0 {
			t.Fatalf("naive plan reordered %d predicates", naive.Reordered())
		}
	})

	t.Run("limit early stop", func(t *testing.T) {
		p, err := query.Compile(wire.Query{Limit: 3})
		if err != nil {
			t.Fatal(err)
		}
		res, err := query.Run(ctx, st, p)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Stats.EarlyTerminated {
			t.Fatal("limit without order should stop the scan early")
		}
		if res.Stats.RowsEmitted != 3 {
			t.Fatalf("RowsEmitted = %d, want 3", res.Stats.RowsEmitted)
		}
	})
}

// TestQueryValidation: every malformed pattern is rejected at compile
// time with an error wrapping ErrBadQuery.
func TestQueryValidation(t *testing.T) {
	cases := map[string]wire.Query{
		"unknown column":      {Where: []wire.Predicate{{Col: "nope", Op: wire.PredEq, Value: "x"}}},
		"bool op":             {Where: []wire.Predicate{{Col: "agrees", Op: wire.PredLt, Value: true}}},
		"bool operand":        {Where: []wire.Predicate{{Col: "agrees", Op: wire.PredEq, Value: "yes"}}},
		"contains operand":    {Where: []wire.Predicate{{Col: "possible", Op: wire.PredContains, Value: 3}}},
		"strings op":          {Where: []wire.Predicate{{Col: "possible", Op: wire.PredEq, Value: "x"}}},
		"string in elements":  {Where: []wire.Predicate{{Col: "user", Op: wire.PredIn, Values: []any{"a", 2}}}},
		"numeric operand":     {Where: []wire.Predicate{{Col: "possible_count", Op: wire.PredEq, Value: "two"}}},
		"string op":           {Where: []wire.Predicate{{Col: "user", Op: wire.PredContains, Value: "x"}}},
		"colB plus literal":   {Where: []wire.Predicate{{Col: "belief", Op: wire.PredEq, ColB: "certain", Value: "x"}}},
		"colB kind mismatch":  {Where: []wire.Predicate{{Col: "belief", Op: wire.PredEq, ColB: "possible_count"}}},
		"colB strings":        {Where: []wire.Predicate{{Col: "possible", Op: wire.PredEq, ColB: "possible"}}},
		"colB bool op":        {Where: []wire.Predicate{{Col: "agrees", Op: wire.PredLt, ColB: "disagrees"}}},
		"negative limit":      {Limit: -1},
		"group without aggs":  {GroupBy: []string{"object"}},
		"group strings col":   {GroupBy: []string{"possible"}, Aggs: []wire.Aggregate{{Fn: wire.AggCount}}},
		"group dup":           {GroupBy: []string{"user", "user"}, Aggs: []wire.Aggregate{{Fn: wire.AggCount}}},
		"agg unknown fn":      {Aggs: []wire.Aggregate{{Fn: "median", Of: "possible_count"}}},
		"agg count with of":   {Aggs: []wire.Aggregate{{Fn: wire.AggCount, Of: "user"}}},
		"agg sum of string":   {Aggs: []wire.Aggregate{{Fn: wire.AggSum, Of: "user"}}},
		"agg rate of int":     {Aggs: []wire.Aggregate{{Fn: wire.AggRate, Of: "possible_count"}}},
		"agg min of bool":     {Aggs: []wire.Aggregate{{Fn: wire.AggMin, Of: "agrees"}}},
		"agg dup name":        {Aggs: []wire.Aggregate{{Fn: wire.AggCount, As: "n"}, {Fn: wire.AggCount, As: "n"}}},
		"having without aggs": {Having: []wire.Predicate{{Col: "object", Op: wire.PredEq, Value: "x"}}},
		"having unknown col":  {Aggs: []wire.Aggregate{{Fn: wire.AggCount}}, Having: []wire.Predicate{{Col: "user", Op: wire.PredEq, Value: "x"}}},
		"select unknown":      {Select: []string{"nope"}},
		"select non-output":   {Aggs: []wire.Aggregate{{Fn: wire.AggCount}}, Select: []string{"user"}},
		"order not selected":  {OrderBy: []wire.OrderKey{{Col: "conflicted"}}, Select: []string{"object"}},
		"order strings col":   {Select: []string{"possible"}, OrderBy: []wire.OrderKey{{Col: "possible"}}},
		"join without object": {Join: &wire.Join{On: []string{"certain"}}},
		"join on strings":     {Join: &wire.Join{On: []string{"object", "possible"}}},
		"join on dup":         {Join: &wire.Join{On: []string{"object", "object"}}},
		"join where r_":       {Join: &wire.Join{On: []string{"object"}, Where: []wire.Predicate{{Col: "r_user", Op: wire.PredEq, Value: "x"}}}},
		"r_ without join":     {Where: []wire.Predicate{{Col: "r_user", Op: wire.PredEq, Value: "x"}}},
	}
	for name, q := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := query.Compile(q); !errors.Is(err, query.ErrBadQuery) {
				t.Fatalf("Compile accepted %+v (err = %v), want ErrBadQuery", q, err)
			}
			if _, err := query.CompileNaive(q); !errors.Is(err, query.ErrBadQuery) {
				t.Fatalf("CompileNaive accepted %+v (err = %v), want ErrBadQuery", q, err)
			}
		})
	}
}
