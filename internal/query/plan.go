package query

// Compilation: wire.Query -> Plan. All validation lives here (every
// rejection wraps ErrBadQuery), as does the greedy predicate ordering —
// the executor trusts the Plan completely.

import (
	"fmt"
	"sort"
	"strings"

	"trustmap/wire"
)

// pred is one compiled predicate: a pure comparison of one row (or
// group) column against a literal operand, an operand set, or a second
// column, pre-validated against the column's kind.
type pred struct {
	col  string
	op   string
	kind kind
	str  string    // string operand (eq/ne/lt/../prefix/contains)
	num  float64   // numeric operand
	b    bool      // boolean operand
	strs []string  // string in-list
	nums []float64 // numeric in-list
	colB string    // compare col against colB instead of a literal
	orig int       // position in the written where-list (reorder stat)
}

// aggPlan is one compiled aggregate output.
type aggPlan struct {
	fn     string
	of     string // input column; "" for count
	name   string // output column name
	inKind kind   // input column kind (count: unused)
	kind   kind   // output kind
}

// orderPlan is one compiled sort key: an output column by its position
// in the projection.
type orderPlan struct {
	col  string
	desc bool
	kind kind
	idx  int // position in Plan.sel
}

// joinPlan is the compiled self-join clause.
type joinPlan struct {
	on    []string // extra equality columns beyond object
	where []pred   // right-side filters (base column space)
}

// Plan is a compiled, validated query ready to Run. Build one with
// Compile (greedy ordering and key/user pushdown) or CompileNaive
// (predicates exactly as written, no pushdown — the parity and
// benchmark reference). Plans are immutable and safe for concurrent
// use, including concurrent RunPartial calls across shards.
type Plan struct {
	keys       []string // object key pushdown, sorted+deduped; nil = scan
	hasKeys    bool
	users      []string // user-loop restriction, sorted+deduped; nil = all
	hasUsers   bool
	filters    []pred // left/base row filters, in evaluation order
	postJoin   []pred // filters referencing r_ columns (joined rows)
	join       *joinPlan
	groupBy    []string
	groupKinds []kind // kinds of groupBy columns, aligned
	aggs       []aggPlan
	having     []pred
	sel        []string
	selKinds   []kind // kinds of selected output columns, aligned
	orderBy    []orderPlan
	limit      int
	reordered  int
}

// Aggregated reports whether the plan is a (possibly grouped) aggregate
// — the plans a cluster can scatter as per-shard partials (RunPartial)
// and merge with Finalize.
func (p *Plan) Aggregated() bool { return len(p.aggs) > 0 }

// Reordered counts predicates the greedy planner evaluates ahead of a
// predicate written before them; zero on naive plans.
func (p *Plan) Reordered() int { return p.reordered }

// Compile validates q and builds its greedy plan: object/user equality
// pushed down, remaining filters ordered value-equality >> membership
// >> residual >> cross-column (stable within a class).
func Compile(q wire.Query) (*Plan, error) { return compile(q, false) }

// CompileNaive validates q and builds the left-to-right reference plan:
// no pushdown, no reordering — every predicate is an ordinary filter in
// written order. Semantically identical to Compile's plan; it exists so
// fuzzing and benchmarks can hold the greedy planner to the naive one.
func CompileNaive(q wire.Query) (*Plan, error) { return compile(q, true) }

func bad(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadQuery, fmt.Sprintf(format, args...))
}

func compile(q wire.Query, naive bool) (*Plan, error) {
	p := &Plan{limit: q.Limit}
	if q.Limit < 0 {
		return nil, bad("limit %d is negative", q.Limit)
	}

	// Row space: the base catalog, plus r_ twins when the query joins.
	rowKinds := baseKinds
	if q.Join != nil {
		rowKinds = make(map[string]kind, 2*len(baseKinds))
		for c, k := range baseKinds {
			rowKinds[c] = k
			rowKinds[rightPrefix+c] = k
		}
	}

	if q.Join != nil {
		jp := &joinPlan{}
		hasObject := false
		seen := map[string]bool{}
		for _, c := range q.Join.On {
			k, ok := baseKinds[c]
			if !ok || k == kindStrings {
				return nil, bad("join on column %q is not a scalar relation column", c)
			}
			if seen[c] {
				return nil, bad("join on column %q repeated", c)
			}
			seen[c] = true
			if c == ColObject {
				hasObject = true
				continue
			}
			jp.on = append(jp.on, c)
		}
		if !hasObject {
			return nil, bad("join on must include %q: joins pair users' views of the same object", ColObject)
		}
		for i, wp := range q.Join.Where {
			cp, err := compilePred(wp, baseKinds, i)
			if err != nil {
				return nil, fmt.Errorf("join where[%d]: %w", i, err)
			}
			jp.where = append(jp.where, cp)
		}
		p.join = jp
	}

	// Partition the where-list: predicates touching r_ columns evaluate
	// post-join; object/user equality extracts as pushdown (greedy only);
	// the rest are base-row filters.
	var keySets, userSets [][]string
	var pushOrigs []int
	for i, wp := range q.Where {
		if strings.HasPrefix(wp.Col, rightPrefix) || strings.HasPrefix(wp.ColB, rightPrefix) {
			if q.Join == nil {
				return nil, bad("where[%d]: column %q needs a join clause", i, wp.Col)
			}
			cp, err := compilePred(wp, rowKinds, i)
			if err != nil {
				return nil, fmt.Errorf("where[%d]: %w", i, err)
			}
			p.postJoin = append(p.postJoin, cp)
			continue
		}
		cp, err := compilePred(wp, baseKinds, i)
		if err != nil {
			return nil, fmt.Errorf("where[%d]: %w", i, err)
		}
		if !naive && cp.colB == "" && (cp.op == wire.PredEq || cp.op == wire.PredIn) {
			switch cp.col {
			case ColObject:
				keySets = append(keySets, predStrings(cp))
				pushOrigs = append(pushOrigs, i)
				continue
			case ColUser:
				userSets = append(userSets, predStrings(cp))
				pushOrigs = append(pushOrigs, i)
				continue
			}
		}
		p.filters = append(p.filters, cp)
	}
	if len(keySets) > 0 {
		p.keys, p.hasKeys = intersectSorted(keySets), true
	}
	if len(userSets) > 0 {
		p.users, p.hasUsers = intersectSorted(userSets), true
	}
	if !naive {
		sort.SliceStable(p.filters, func(i, j int) bool {
			return filterClass(p.filters[i]) < filterClass(p.filters[j])
		})
		// Evaluation order: pushdowns first, then the sorted filters.
		evalOrigs := append([]int{}, pushOrigs...)
		for _, f := range p.filters {
			evalOrigs = append(evalOrigs, f.orig)
		}
		p.reordered = countReordered(evalOrigs)
	}

	// Grouping and aggregates.
	if len(q.GroupBy) > 0 && len(q.Aggs) == 0 {
		return nil, bad("group_by requires at least one aggregate")
	}
	outKinds := rowKinds
	var outOrder []string
	if len(q.Aggs) > 0 {
		outKinds = make(map[string]kind, len(q.GroupBy)+len(q.Aggs))
		for _, c := range q.GroupBy {
			k, ok := rowKinds[c]
			if !ok || k == kindStrings {
				return nil, bad("group_by column %q is not a scalar relation column", c)
			}
			if _, dup := outKinds[c]; dup {
				return nil, bad("group_by column %q repeated", c)
			}
			outKinds[c] = k
			outOrder = append(outOrder, c)
			p.groupBy = append(p.groupBy, c)
			p.groupKinds = append(p.groupKinds, k)
		}
		for i, a := range q.Aggs {
			ap, err := compileAgg(a, rowKinds)
			if err != nil {
				return nil, fmt.Errorf("aggs[%d]: %w", i, err)
			}
			if _, dup := outKinds[ap.name]; dup {
				return nil, bad("aggs[%d]: output column %q repeated", i, ap.name)
			}
			outKinds[ap.name] = ap.kind
			outOrder = append(outOrder, ap.name)
			p.aggs = append(p.aggs, ap)
		}
	} else {
		if q.Join == nil {
			outOrder = baseOrder
		} else {
			outOrder = make([]string, 0, 2*len(baseOrder))
			outOrder = append(outOrder, baseOrder...)
			for _, c := range baseOrder {
				outOrder = append(outOrder, rightPrefix+c)
			}
		}
	}
	for i, wp := range q.Having {
		if len(q.Aggs) == 0 {
			return nil, bad("having requires aggregates")
		}
		cp, err := compilePred(wp, outKinds, i)
		if err != nil {
			return nil, fmt.Errorf("having[%d]: %w", i, err)
		}
		p.having = append(p.having, cp)
	}

	// Projection: explicit, or the documented defaults.
	sel := q.Select
	if len(sel) == 0 {
		switch {
		case len(q.Aggs) > 0:
			sel = outOrder
		case q.Join != nil:
			sel = []string{ColObject, ColUser, ColCertain, rightPrefix + ColUser, rightPrefix + ColCertain}
		default:
			sel = []string{ColObject, ColUser, ColCertain, ColBelief, ColPossibleCount}
		}
	}
	selSet := map[string]kind{}
	for _, c := range sel {
		k, ok := outKinds[c]
		if !ok {
			return nil, bad("select column %q is not an output column", c)
		}
		p.sel = append(p.sel, c)
		p.selKinds = append(p.selKinds, k)
		selSet[c] = k
	}

	for i, ok := range q.OrderBy {
		k, in := selSet[ok.Col]
		if !in {
			return nil, bad("order_by[%d]: column %q is not among the selected output columns", i, ok.Col)
		}
		if k == kindStrings {
			return nil, bad("order_by[%d]: column %q is not scalar", i, ok.Col)
		}
		idx := 0
		for j, c := range p.sel {
			if c == ok.Col {
				idx = j
				break
			}
		}
		p.orderBy = append(p.orderBy, orderPlan{col: ok.Col, desc: ok.Desc, kind: k, idx: idx})
	}
	return p, nil
}

// filterClass buckets a base-row filter for the greedy order: scalar
// equality (0) before membership (1) before residual comparisons (2)
// before cross-column comparisons (3).
func filterClass(p pred) int {
	switch {
	case p.colB != "":
		return 3
	case p.op == wire.PredEq:
		return 0
	case p.op == wire.PredIn:
		return 1
	default:
		return 2
	}
}

// countReordered counts predicates evaluated ahead of at least one
// predicate written before them, given the written indices of the
// evaluation order — the planner's visible deviation from written order.
func countReordered(evalOrigs []int) int {
	n := 0
	for i, v := range evalOrigs {
		for _, w := range evalOrigs[i+1:] {
			if w < v {
				n++
				break
			}
		}
	}
	return n
}

// predStrings returns the string operand set of an eq/in predicate.
func predStrings(p pred) []string {
	if p.op == wire.PredEq {
		return []string{p.str}
	}
	return p.strs
}

// intersectSorted intersects the operand sets and returns the result
// sorted and deduplicated (possibly empty: a provably empty result).
func intersectSorted(sets [][]string) []string {
	counts := map[string]int{}
	for _, set := range sets {
		seen := map[string]bool{}
		for _, s := range set {
			if !seen[s] {
				seen[s] = true
				counts[s]++
			}
		}
	}
	out := []string{}
	for s, c := range counts {
		if c == len(sets) {
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// compilePred validates one wire predicate against a column space and
// normalizes its operand.
func compilePred(wp wire.Predicate, space map[string]kind, orig int) (pred, error) {
	k, ok := space[wp.Col]
	if !ok {
		return pred{}, bad("unknown column %q", wp.Col)
	}
	p := pred{col: wp.Col, op: wp.Op, kind: k, orig: orig}

	if wp.ColB != "" {
		if wp.Value != nil || len(wp.Values) > 0 {
			return pred{}, bad("col_b and a literal operand are mutually exclusive")
		}
		kb, ok := space[wp.ColB]
		if !ok {
			return pred{}, bad("unknown column %q", wp.ColB)
		}
		if kb != k || k == kindStrings {
			return pred{}, bad("cannot compare column %q against column %q", wp.Col, wp.ColB)
		}
		if !ordOp(wp.Op) || (k == kindBool && wp.Op != wire.PredEq && wp.Op != wire.PredNe) {
			return pred{}, bad("operator %q is not valid for a column comparison", wp.Op)
		}
		p.colB = wp.ColB
		return p, nil
	}

	switch k {
	case kindStrings:
		if wp.Op != wire.PredContains {
			return pred{}, bad("column %q only supports %q", wp.Col, wire.PredContains)
		}
		s, ok := wp.Value.(string)
		if !ok {
			return pred{}, bad("%q needs a string operand", wire.PredContains)
		}
		p.str = s
	case kindBool:
		if wp.Op != wire.PredEq && wp.Op != wire.PredNe {
			return pred{}, bad("boolean column %q only supports eq/ne", wp.Col)
		}
		switch v := wp.Value.(type) {
		case nil:
			p.b = true // {"col":"agrees","op":"eq"} means agrees == true
		case bool:
			p.b = v
		default:
			return pred{}, bad("boolean column %q needs a boolean operand", wp.Col)
		}
	case kindString:
		switch wp.Op {
		case wire.PredIn:
			for _, v := range wp.Values {
				s, ok := v.(string)
				if !ok {
					return pred{}, bad("in-list for column %q needs string elements", wp.Col)
				}
				p.strs = append(p.strs, s)
			}
		case wire.PredEq, wire.PredNe, wire.PredLt, wire.PredLe, wire.PredGt, wire.PredGe, wire.PredPrefix:
			s, ok := wp.Value.(string)
			if !ok {
				return pred{}, bad("column %q needs a string operand", wp.Col)
			}
			p.str = s
		default:
			return pred{}, bad("operator %q is not valid on string column %q", wp.Op, wp.Col)
		}
	case kindInt, kindFloat:
		switch wp.Op {
		case wire.PredIn:
			for _, v := range wp.Values {
				f, ok := toFloat(v)
				if !ok {
					return pred{}, bad("in-list for column %q needs numeric elements", wp.Col)
				}
				p.nums = append(p.nums, f)
			}
		case wire.PredEq, wire.PredNe, wire.PredLt, wire.PredLe, wire.PredGt, wire.PredGe:
			f, ok := toFloat(wp.Value)
			if !ok {
				return pred{}, bad("column %q needs a numeric operand", wp.Col)
			}
			p.num = f
		default:
			return pred{}, bad("operator %q is not valid on numeric column %q", wp.Op, wp.Col)
		}
	}
	return p, nil
}

// ordOp reports whether op is one of the six ordered comparisons.
func ordOp(op string) bool {
	switch op {
	case wire.PredEq, wire.PredNe, wire.PredLt, wire.PredLe, wire.PredGt, wire.PredGe:
		return true
	}
	return false
}

// compileAgg validates one aggregate against the row space.
func compileAgg(a wire.Aggregate, space map[string]kind) (aggPlan, error) {
	ap := aggPlan{fn: a.Fn, of: a.Of, name: a.As}
	if ap.name == "" {
		ap.name = a.Fn
		if a.Of != "" {
			ap.name = a.Fn + "_" + a.Of
		}
	}
	if a.Fn == wire.AggCount {
		if a.Of != "" {
			return aggPlan{}, bad("count takes no input column")
		}
		ap.kind = kindInt
		return ap, nil
	}
	k, ok := space[a.Of]
	if !ok {
		return aggPlan{}, bad("unknown aggregate input column %q", a.Of)
	}
	ap.inKind = k
	switch a.Fn {
	case wire.AggSum, wire.AggAvg:
		if k != kindInt && k != kindBool {
			return aggPlan{}, bad("%s needs a numeric or boolean input column, not %q", a.Fn, a.Of)
		}
		ap.kind = kindFloat
	case wire.AggRate:
		if k != kindBool {
			return aggPlan{}, bad("rate needs a boolean input column, not %q", a.Of)
		}
		ap.kind = kindFloat
	case wire.AggMin, wire.AggMax:
		switch k {
		case kindInt:
			ap.kind = kindInt
		case kindString:
			ap.kind = kindString
		default:
			return aggPlan{}, bad("%s needs a numeric or string input column, not %q", a.Fn, a.Of)
		}
	default:
		return aggPlan{}, bad("unknown aggregate function %q", a.Fn)
	}
	return ap, nil
}

// toFloat normalizes the numeric shapes JSON decoding and Go callers
// produce.
func toFloat(v any) (float64, bool) {
	switch n := v.(type) {
	case float64:
		return n, true
	case float32:
		return float64(n), true
	case int:
		return float64(n), true
	case int64:
		return float64(n), true
	case uint64:
		return float64(n), true
	}
	return 0, false
}
