// Package orchestra is a minimal re-implementation of the update-exchange
// baseline the paper contrasts against (the Orchestra system, discussed in
// Section 1 and Example 1.2): updates are processed one at a time, First-In
// First-Out; when a user publishes a value it propagates along trust
// mappings, but a user who already holds a value acquired at an earlier
// timestamp keeps it. The package exists to demonstrate the two anomalies
// of Example 1.2 - order dependence and stale values after updates or
// revocations - that the stable-solution semantics eliminates.
package orchestra

import (
	"trustmap/internal/tn"
)

// entry is a user's current value for one object.
type entry struct {
	value    tn.Value
	stamp    int // acquisition timestamp
	explicit bool
}

// System is a FIFO update-exchange engine over a trust network.
type System struct {
	net   *tn.Network
	state []map[string]entry // per user: object -> entry
	clock int
	// children[z] lists (child, priority) pairs for propagation.
	children [][]tn.Mapping
}

// New builds an update-exchange system over the network's mappings. The
// network's explicit beliefs are ignored: state is built from updates.
func New(network *tn.Network) *System {
	s := &System{
		net:      network,
		state:    make([]map[string]entry, network.NumUsers()),
		children: make([][]tn.Mapping, network.NumUsers()),
	}
	for x := 0; x < network.NumUsers(); x++ {
		s.state[x] = make(map[string]entry)
		for _, m := range network.In(x) {
			s.children[m.Parent] = append(s.children[m.Parent], m)
		}
	}
	return s
}

// Insert publishes an explicit value for (user, object) and propagates it.
func (s *System) Insert(user int, object string, v tn.Value) {
	s.clock++
	s.state[user][object] = entry{value: v, stamp: s.clock, explicit: true}
	s.propagate(user, object)
}

// Update changes a user's explicit value. Like the system the paper
// describes, downstream users who imported the old value keep it: update
// propagation cannot fix them (Example 1.2, second sequence).
func (s *System) Update(user int, object string, v tn.Value) {
	s.clock++
	s.state[user][object] = entry{value: v, stamp: s.clock, explicit: true}
	s.propagate(user, object)
}

// Revoke removes a user's explicit value. Stale imported copies remain
// downstream.
func (s *System) Revoke(user int, object string) {
	delete(s.state[user], object)
}

// propagate pushes the value at (src, object) to children that do not yet
// hold a value for the object (earlier timestamps win, per Example 1.2).
func (s *System) propagate(src int, object string) {
	queue := []int{src}
	for len(queue) > 0 {
		z := queue[0]
		queue = queue[1:]
		v := s.state[z][object].value
		for _, m := range s.children[z] {
			x := m.Child
			if _, has := s.state[x][object]; has {
				continue // already acquired at an earlier timestamp
			}
			s.clock++
			s.state[x][object] = entry{value: v, stamp: s.clock}
			queue = append(queue, x)
		}
	}
}

// Belief returns the user's current value for the object, or tn.NoValue.
func (s *System) Belief(user int, object string) tn.Value {
	return s.state[user][object].value
}

// Snapshot returns all users' values for an object.
func (s *System) Snapshot(object string) []tn.Value {
	out := make([]tn.Value, s.net.NumUsers())
	for x := range out {
		out[x] = s.state[x][object].value
	}
	return out
}

// AsNetwork converts the current explicit beliefs for one object back into
// a trust network, for comparison with the stable-solution semantics.
func (s *System) AsNetwork(object string) *tn.Network {
	n := s.net.Clone()
	for x := 0; x < n.NumUsers(); x++ {
		n.SetExplicit(x, tn.NoValue)
		if e, ok := s.state[x][object]; ok && e.explicit {
			n.SetExplicit(x, e.value)
		}
	}
	return n
}
