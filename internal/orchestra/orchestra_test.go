package orchestra

import (
	"math/rand"
	"testing"

	"trustmap/internal/resolve"
	"trustmap/internal/tn"
)

// figure2 builds the Alice/Bob/Charlie network of Figure 2.
func figure2() (*tn.Network, int, int, int) {
	n := tn.New()
	alice := n.AddUser("Alice")
	bob := n.AddUser("Bob")
	charlie := n.AddUser("Charlie")
	n.AddMapping(bob, alice, 100)
	n.AddMapping(charlie, alice, 50)
	n.AddMapping(alice, bob, 80)
	return n, alice, bob, charlie
}

// TestExample12FirstSequence replays the first anomaly of Example 1.2:
// Charlie inserts jar, then Bob inserts cow; Alice keeps jar even though
// she trusts Bob more.
func TestExample12FirstSequence(t *testing.T) {
	n, alice, bob, charlie := figure2()
	s := New(n)
	s.Insert(charlie, "glyph", "jar")
	if s.Belief(alice, "glyph") != "jar" || s.Belief(bob, "glyph") != "jar" {
		t.Fatal("jar must propagate to Alice and Bob")
	}
	s.Insert(bob, "glyph", "cow")
	if got := s.Belief(alice, "glyph"); got != "jar" {
		t.Fatalf("FIFO baseline: Alice should be stuck at jar, got %q", got)
	}
	// The stable-solution semantics resolves it correctly.
	r := resolve.Resolve(tn.Binarize(s.AsNetwork("glyph")))
	if got := r.Certain(alice); got != "cow" {
		t.Fatalf("RA: Alice must see cow (trusts Bob most), got %q", got)
	}
}

// TestExample12OrderDependence: reversing the insert order changes the
// FIFO outcome but not the stable-solution outcome.
func TestExample12OrderDependence(t *testing.T) {
	n, alice, bob, charlie := figure2()

	s1 := New(n)
	s1.Insert(charlie, "glyph", "jar")
	s1.Insert(bob, "glyph", "cow")

	s2 := New(n)
	s2.Insert(bob, "glyph", "cow")
	s2.Insert(charlie, "glyph", "jar")

	if s1.Belief(alice, "glyph") == s2.Belief(alice, "glyph") {
		t.Fatalf("FIFO baseline should be order dependent; both give %q",
			s1.Belief(alice, "glyph"))
	}
	r1 := resolve.Resolve(tn.Binarize(s1.AsNetwork("glyph")))
	r2 := resolve.Resolve(tn.Binarize(s2.AsNetwork("glyph")))
	if r1.Certain(alice) != r2.Certain(alice) {
		t.Fatal("stable-solution semantics must be order invariant")
	}
	if r1.Certain(alice) != "cow" {
		t.Fatalf("Alice must certainly see cow, got %q", r1.Certain(alice))
	}
}

// TestExample12UpdateAnomaly replays the second anomaly: Charlie updates
// jar -> cow but Alice and Bob hold each other's stale jar.
func TestExample12UpdateAnomaly(t *testing.T) {
	n, alice, bob, charlie := figure2()
	s := New(n)
	s.Insert(charlie, "glyph", "jar")
	s.Update(charlie, "glyph", "cow")
	if got := s.Belief(alice, "glyph"); got != "jar" {
		t.Fatalf("FIFO baseline: Alice should hold stale jar, got %q", got)
	}
	if got := s.Belief(bob, "glyph"); got != "jar" {
		t.Fatalf("FIFO baseline: Bob should hold stale jar, got %q", got)
	}
	// Re-running the Resolution Algorithm gives the consistent snapshot.
	r := resolve.Resolve(tn.Binarize(s.AsNetwork("glyph")))
	if got := r.Certain(alice); got != "cow" {
		t.Fatalf("RA after update: Alice must see cow, got %q", got)
	}
	if got := r.Certain(bob); got != "cow" {
		t.Fatalf("RA after update: Bob must see cow, got %q", got)
	}
}

// TestRevocation: after Charlie revokes, the FIFO system has stale values;
// re-resolving the network yields no value at all.
func TestRevocation(t *testing.T) {
	n, alice, _, charlie := figure2()
	s := New(n)
	s.Insert(charlie, "glyph", "jar")
	s.Revoke(charlie, "glyph")
	if got := s.Belief(alice, "glyph"); got != "jar" {
		t.Fatalf("FIFO baseline keeps stale value, got %q", got)
	}
	r := resolve.Resolve(tn.Binarize(s.AsNetwork("glyph")))
	if got := r.Possible(alice); len(got) != 0 {
		t.Fatalf("after revocation no value should be derivable, got %v", got)
	}
}

// TestResolutionOrderInvariantRandom: for random networks and random
// insertion orders, the stable-solution possible sets never depend on the
// order, while the FIFO baseline frequently does.
func TestResolutionOrderInvariantRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	fifoDiffers := 0
	for iter := 0; iter < 60; iter++ {
		n := tn.New()
		nu := 3 + rng.Intn(4)
		for i := 0; i < nu; i++ {
			n.AddUser(string(rune('A' + i)))
		}
		for x := 0; x < nu; x++ {
			k := rng.Intn(3)
			perm := rng.Perm(nu)
			added := 0
			for _, z := range perm {
				if added >= k || z == x {
					continue
				}
				n.AddMapping(z, x, 1+rng.Intn(5))
				added++
			}
		}
		if !n.IsBinary() {
			continue
		}
		// Random explicit beliefs to publish.
		type upd struct {
			user int
			val  tn.Value
		}
		var updates []upd
		for x := 0; x < nu; x++ {
			if rng.Float64() < 0.5 {
				updates = append(updates, upd{x, tn.Value([]string{"v", "w"}[rng.Intn(2)])})
			}
		}
		if len(updates) < 2 {
			continue
		}
		apply := func(order []int) (*System, *tn.Network) {
			s := New(n)
			for _, i := range order {
				s.Insert(updates[i].user, "k", updates[i].val)
			}
			return s, s.AsNetwork("k")
		}
		fwd := make([]int, len(updates))
		rev := make([]int, len(updates))
		for i := range updates {
			fwd[i] = i
			rev[len(updates)-1-i] = i
		}
		s1, n1 := apply(fwd)
		s2, n2 := apply(rev)
		r1 := resolve.Resolve(tn.Binarize(n1))
		r2 := resolve.Resolve(tn.Binarize(n2))
		for x := 0; x < nu; x++ {
			p1, p2 := r1.Possible(x), r2.Possible(x)
			if len(p1) != len(p2) {
				t.Fatalf("iter %d: RA order dependent at %s: %v vs %v", iter, n.Name(x), p1, p2)
			}
			for i := range p1 {
				if p1[i] != p2[i] {
					t.Fatalf("iter %d: RA order dependent at %s: %v vs %v", iter, n.Name(x), p1, p2)
				}
			}
			if s1.Belief(x, "k") != s2.Belief(x, "k") {
				fifoDiffers++
			}
		}
	}
	if fifoDiffers == 0 {
		t.Error("expected the FIFO baseline to disagree across orders at least once")
	}
}

func TestSnapshot(t *testing.T) {
	n, alice, bob, charlie := figure2()
	s := New(n)
	s.Insert(charlie, "g", "jar")
	snap := s.Snapshot("g")
	if snap[alice] != "jar" || snap[bob] != "jar" || snap[charlie] != "jar" {
		t.Errorf("snapshot wrong: %v", snap)
	}
}
