package replica_test

// Replica tests: live WAL tailing into a second durable store, the
// torn-stream fault (reconnect at the right LSN, no double apply),
// snapshot bootstrap, the 410 pruned-log signal, and dead-primary
// salvage. The primary is the real serving stack (internal/httpd) on a
// real listener; the replica is the real tailer — the only synthetic
// piece is the injected tear.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"trustmap"
	"trustmap/internal/faultinject"
	"trustmap/internal/httpd"
	"trustmap/internal/replica"
)

// startPrimary opens a durable store in dir and serves it.
func startPrimary(t *testing.T, dir string) (*trustmap.Store, *httptest.Server) {
	t.Helper()
	st, err := trustmap.OpenStore(dir, trustmap.WithDurability(trustmap.DurabilityAlways))
	if err != nil {
		t.Fatalf("open primary: %v", err)
	}
	ts := httptest.NewServer(httpd.New(st, httpd.Config{WALPoll: 2 * time.Millisecond}))
	t.Cleanup(func() {
		ts.Close()
		st.Close()
	})
	return st, ts
}

func openReplicaStore(t *testing.T, dir string) *trustmap.Store {
	t.Helper()
	st, err := trustmap.OpenStore(dir, trustmap.WithDurability(trustmap.DurabilityAlways))
	if err != nil {
		t.Fatalf("open replica: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// writeOps drives n deterministic effective mutations (LSNs from+1..from+n).
func writeOps(t *testing.T, st *trustmap.Store, from uint64, n int) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < n; i++ {
		lsn := from + uint64(i) + 1
		var err error
		switch lsn % 3 {
		case 0:
			err = st.PutBelief(ctx, "seed", fmt.Sprintf("obj%d", lsn%5), fmt.Sprintf("v%d", lsn))
		case 1:
			err = st.SetDefault(ctx, fmt.Sprintf("u%d", lsn), fmt.Sprintf("d%d", lsn))
		default:
			err = st.SetTrust(ctx, fmt.Sprintf("u%d", lsn), "seed", int(lsn%7)+1)
		}
		if err != nil {
			t.Fatalf("write lsn %d: %v", lsn, err)
		}
		if got := st.LSN(); got != lsn {
			t.Fatalf("write landed at lsn %d, want %d", got, lsn)
		}
	}
}

// fingerprint flattens a store's full resolved state for parity checks.
func fingerprint(t *testing.T, st *trustmap.Store) string {
	t.Helper()
	res, err := st.ResolveAll(context.Background())
	if err != nil {
		t.Fatalf("resolve all: %v", err)
	}
	users := st.Users()
	sort.Strings(users)
	var b strings.Builder
	for _, obj := range res.Keys() {
		for _, u := range users {
			fmt.Fprintf(&b, "%s/%s=%v;", u, obj, res.Possible(u, obj))
		}
	}
	return b.String()
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestTailerLiveFollow(t *testing.T) {
	p, ts := startPrimary(t, t.TempDir())
	writeOps(t, p, 0, 10)

	r := openReplicaStore(t, t.TempDir())
	tail := replica.Start(r, ts.URL, replica.WithBackoff(5*time.Millisecond, 100*time.Millisecond))
	defer tail.Stop()

	waitFor(t, 5*time.Second, "replica to reach lsn 10", func() bool { return r.LSN() == 10 })
	// Writes landing while the stream is live keep flowing.
	writeOps(t, p, 10, 7)
	waitFor(t, 5*time.Second, "replica to reach lsn 17", func() bool { return r.LSN() == 17 })
	waitFor(t, 5*time.Second, "lag to drain", func() bool { return tail.Lag() == 0 })

	if got, want := fingerprint(t, r), fingerprint(t, p); got != want {
		t.Fatalf("replica resolved state diverges:\n got %s\nwant %s", got, want)
	}
	s := tail.Stats()
	if s.Role != "replica" || s.Primary != ts.URL || !s.Connected {
		t.Fatalf("stats role/primary/connected wrong: %+v", s)
	}
	if s.AppliedBatches != 17 || s.SkippedBatches != 0 {
		t.Fatalf("applied=%d skipped=%d, want 17/0", s.AppliedBatches, s.SkippedBatches)
	}
}

// The satellite fault: a stream torn mid-batch must reconnect and resume
// at the right LSN without double-applying anything.
func TestTailerTornStreamReconnects(t *testing.T) {
	defer faultinject.Reset()
	p, ts := startPrimary(t, t.TempDir())
	writeOps(t, p, 0, 20)

	// The 8th shipped record is cut 5 bytes in: a partial frame header
	// lands on the wire and the stream ends — the shape a primary crash
	// mid-send produces.
	faultinject.Enable(faultinject.ReplicaStream,
		faultinject.FailN(7, 1, &faultinject.ShortWriteError{Bytes: 5}))

	r := openReplicaStore(t, t.TempDir())
	tail := replica.Start(r, ts.URL, replica.WithBackoff(5*time.Millisecond, 100*time.Millisecond))
	defer tail.Stop()

	// The store's LSN becomes visible before the tailer's stats counter
	// increments (the batch fsyncs in between), so wait for both: the
	// replica at LSN 20 and the tailer having accounted for 20 batches.
	waitFor(t, 5*time.Second, "replica to recover past the tear", func() bool {
		s := tail.Stats()
		return r.LSN() == 20 && s.AppliedBatches+s.SkippedBatches >= 20
	})
	s := tail.Stats()
	if s.Reconnects < 1 {
		t.Fatalf("reconnects = %d, want >= 1", s.Reconnects)
	}
	// Exactly 20 batches applied and none skipped: the resume asked for
	// precisely the suffix after the last applied LSN — no double apply,
	// no overlap, no gap.
	if s.AppliedBatches != 20 || s.SkippedBatches != 0 {
		t.Fatalf("applied=%d skipped=%d, want 20/0", s.AppliedBatches, s.SkippedBatches)
	}
	if r.DurableLSN() != 20 {
		t.Fatalf("replica durable lsn = %d, want 20", r.DurableLSN())
	}
	if got, want := fingerprint(t, r), fingerprint(t, p); got != want {
		t.Fatalf("post-reconnect resolved state diverges")
	}
}

func TestBootstrapFromSnapshot(t *testing.T) {
	p, ts := startPrimary(t, t.TempDir())
	writeOps(t, p, 0, 10)
	if _, err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	writeOps(t, p, 10, 5) // WAL suffix above the snapshot

	rdir := t.TempDir()
	installed, lsn, err := replica.Bootstrap(context.Background(), rdir, ts.URL, nil)
	if err != nil || !installed || lsn != 10 {
		t.Fatalf("bootstrap: installed=%v lsn=%d err=%v, want true/10", installed, lsn, err)
	}
	r := openReplicaStore(t, rdir)
	if r.LSN() != 10 {
		t.Fatalf("bootstrapped store lsn = %d, want 10", r.LSN())
	}
	tail := replica.Start(r, ts.URL, replica.WithBackoff(5*time.Millisecond, 100*time.Millisecond))
	defer tail.Stop()
	waitFor(t, 5*time.Second, "bootstrapped replica to catch up", func() bool { return r.LSN() == 15 })
	if got, want := fingerprint(t, r), fingerprint(t, p); got != want {
		t.Fatalf("bootstrapped replica resolved state diverges")
	}

	// A primary with no checkpoint yet answers 204: nothing installed.
	p2, ts2 := startPrimary(t, t.TempDir())
	writeOps(t, p2, 0, 3)
	if installed, _, err := replica.Bootstrap(context.Background(), t.TempDir(), ts2.URL, nil); err != nil || installed {
		t.Fatalf("bootstrap without snapshot: installed=%v err=%v, want false/nil", installed, err)
	}
}

// A replica asking for records pruned behind the primary's checkpoints
// gets the unambiguous 410 signal, not a silent gap.
func TestTailerPrunedLogNeedsBootstrap(t *testing.T) {
	p, ts := startPrimary(t, t.TempDir())
	writeOps(t, p, 0, 10)
	if _, err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	writeOps(t, p, 10, 5)
	if _, err := p.Checkpoint(); err != nil { // rotates again: first segment pruned
		t.Fatal(err)
	}

	rdir := t.TempDir()
	r := openReplicaStore(t, rdir) // fresh, LSN 0, deliberately not bootstrapped
	tail := replica.Start(r, ts.URL, replica.WithBackoff(5*time.Millisecond, 50*time.Millisecond))
	waitFor(t, 5*time.Second, "bootstrap-required signal", func() bool {
		return strings.Contains(tail.Stats().LastError, "re-bootstrap required")
	})
	if r.LSN() != 0 {
		t.Fatalf("un-bootstrapped replica applied %d batches from a pruned log", r.LSN())
	}
	tail.Stop()
}

func TestSalvageDeadPrimaryTail(t *testing.T) {
	pdir := t.TempDir()
	p, ts := startPrimary(t, pdir)
	writeOps(t, p, 0, 12)

	r := openReplicaStore(t, t.TempDir())
	tail := replica.Start(r, ts.URL, replica.WithBackoff(5*time.Millisecond, 100*time.Millisecond))
	waitFor(t, 5*time.Second, "replica to sync", func() bool { return r.LSN() == 12 })
	tail.Stop()

	// The "primary" dies with 6 batches the replica never saw: simulate
	// by writing them after the tail stopped, then closing the store.
	writeOps(t, p, 12, 6)
	ts.Close()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	n, err := replica.Salvage(pdir, r)
	if err != nil || n != 6 {
		t.Fatalf("salvage = %d, %v; want 6 batches", n, err)
	}
	if r.LSN() != 18 || r.DurableLSN() != 18 {
		t.Fatalf("salvaged replica lsn=%d durable=%d, want 18", r.LSN(), r.DurableLSN())
	}
	// Salvage is idempotent: nothing left to ship.
	if n, err := replica.Salvage(pdir, r); err != nil || n != 0 {
		t.Fatalf("second salvage = %d, %v; want 0", n, err)
	}
}

func TestTailerSurvivesPrimaryRestart(t *testing.T) {
	pdir := t.TempDir()
	p, ts := startPrimary(t, pdir)
	writeOps(t, p, 0, 5)

	r := openReplicaStore(t, t.TempDir())
	tail := replica.Start(r, ts.URL, replica.WithBackoff(5*time.Millisecond, 100*time.Millisecond))
	defer tail.Stop()
	waitFor(t, 5*time.Second, "replica to sync", func() bool { return r.LSN() == 5 })

	// Kill the primary's listener; the tailer must report the outage and
	// then resume when a primary comes back at the same address. (A new
	// httptest server gets a new port, so the resume is exercised via the
	// error path + reconnect counter rather than a same-port restart.)
	ts.CloseClientConnections()
	writeOps(t, p, 5, 3)
	waitFor(t, 5*time.Second, "replica to resync after drop", func() bool { return r.LSN() == 8 })
	if s := tail.Stats(); s.Reconnects < 1 {
		t.Fatalf("reconnects = %d, want >= 1", s.Reconnects)
	}
}
