// Package replica is the receiving half of WAL shipping: the machinery
// a `trustd -replica-of <primary>` runs to stay a faithful copy of its
// primary. Bootstrap seeds the data directory from the primary's latest
// snapshot before the store opens; Tailer then follows the primary's
// GET /v1/wal stream, applying every shipped batch through the store's
// log-and-apply path (trustmap.Store.ApplyReplicated), so the replica
// is itself durable, restartable, and promotable in place. Salvage
// ships a dead primary's WAL tail straight from its data directory —
// the runbook step that makes a manual failover lose nothing that was
// ever acknowledged durable.
//
// The tailer is crash-shaped, not happy-path-shaped: a torn stream
// (primary died mid-frame), a clean server-side close, a gap after a
// missed reconnect window — all funnel into the same recovery: drop the
// connection and re-request the stream after the store's own applied
// LSN. ApplyReplicated skips duplicates and refuses gaps, so reconnect
// overlap can never double-apply and lost batches can never be papered
// over.
package replica

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"trustmap"
	"trustmap/internal/wal"
	"trustmap/wire"
)

// ErrBootstrapRequired reports a primary that answered 410 Gone: the WAL
// records this replica needs are pruned behind a checkpoint. The tailer
// cannot heal this on a live store — restart the replica process; its
// Bootstrap will install the primary's current snapshot.
var ErrBootstrapRequired = errors.New("replica: primary pruned past our position; snapshot re-bootstrap required")

// Defaults for the reconnect backoff: exponential between the two.
const (
	DefaultMinBackoff = 50 * time.Millisecond
	DefaultMaxBackoff = 2 * time.Second
)

// Option configures a Tailer.
type Option func(*Tailer)

// WithHTTPClient sets the HTTP client used for the stream. The client's
// Timeout must be zero — the stream is deliberately endless — so only
// transport-level (dial/TLS) timeouts belong on it.
func WithHTTPClient(hc *http.Client) Option {
	return func(t *Tailer) { t.hc = hc }
}

// WithBackoff bounds the reconnect backoff (exponential from min to max).
func WithBackoff(min, max time.Duration) Option {
	return func(t *Tailer) { t.minBackoff, t.maxBackoff = min, max }
}

// WithLogf routes the tailer's connection-lifecycle messages (default:
// dropped).
func WithLogf(fn func(format string, args ...any)) Option {
	return func(t *Tailer) { t.logf = fn }
}

// Tailer follows one primary's WAL stream into one open durable store.
// It satisfies internal/httpd.Replication, so handing it to
// Server.SetReplication is what makes a serving process a replica.
type Tailer struct {
	st         *trustmap.Store
	primary    string
	hc         *http.Client
	minBackoff time.Duration
	maxBackoff time.Duration
	logf       func(string, ...any)

	cancel context.CancelFunc
	done   chan struct{}
	stop   sync.Once

	connected  atomic.Bool
	lastSeen   atomic.Uint64 // highest primary durable LSN observed
	applied    atomic.Uint64 // batches applied
	appliedOps atomic.Uint64
	skipped    atomic.Uint64 // duplicate batches discarded (reconnect overlap)
	reconnects atomic.Uint64

	mu      sync.Mutex
	lastErr string
}

// Start begins tailing primary (a base URL) into st and returns
// immediately; the stream runs until Stop. st must be a durable store
// whose state is a prefix of the primary's history (fresh, bootstrapped
// by Bootstrap, or recovered from an earlier tail of the same primary).
func Start(st *trustmap.Store, primary string, opts ...Option) *Tailer {
	t := &Tailer{
		st:         st,
		primary:    primary,
		hc:         &http.Client{},
		minBackoff: DefaultMinBackoff,
		maxBackoff: DefaultMaxBackoff,
		logf:       func(string, ...any) {},
	}
	for _, o := range opts {
		o(t)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.cancel = cancel
	t.done = make(chan struct{})
	go t.run(ctx)
	return t
}

// Stop ends the tail and waits for the streaming loop to exit: after
// Stop returns, no further replicated apply can land. Idempotent.
func (t *Tailer) Stop() {
	t.stop.Do(func() {
		t.cancel()
		<-t.done
	})
}

// PrimaryURL is the primary this tailer follows.
func (t *Tailer) PrimaryURL() string { return t.primary }

// Lag is the replication lag in WAL batches: the highest primary durable
// LSN observed minus the store's own logged LSN, floor zero. Zero before
// first contact — see Stats().Connected for whether that means "caught
// up" or "never heard from the primary".
func (t *Tailer) Lag() uint64 {
	seen, local := t.lastSeen.Load(), t.st.LSN()
	if seen <= local {
		return 0
	}
	return seen - local
}

// Stats snapshots the tail for /v1/stats.
func (t *Tailer) Stats() wire.ReplicationStats {
	t.mu.Lock()
	lastErr := t.lastErr
	t.mu.Unlock()
	return wire.ReplicationStats{
		Role:           "replica",
		Primary:        t.primary,
		Connected:      t.connected.Load(),
		LastSeenLSN:    t.lastSeen.Load(),
		Lag:            t.Lag(),
		AppliedBatches: t.applied.Load(),
		AppliedOps:     t.appliedOps.Load(),
		SkippedBatches: t.skipped.Load(),
		Reconnects:     t.reconnects.Load(),
		LastError:      lastErr,
	}
}

func (t *Tailer) setErr(err error) {
	t.mu.Lock()
	t.lastErr = err.Error()
	t.mu.Unlock()
	t.logf("replica: stream to %s: %v", t.primary, err)
}

// observe records a primary durable LSN learned from the stream.
func (t *Tailer) observe(lsn uint64) {
	for {
		cur := t.lastSeen.Load()
		if lsn <= cur || t.lastSeen.CompareAndSwap(cur, lsn) {
			return
		}
	}
}

// run is the reconnect loop: stream until it drops, back off, resume at
// the store's applied LSN. Progress resets the backoff.
func (t *Tailer) run(ctx context.Context) {
	defer close(t.done)
	backoff := t.minBackoff
	for {
		progressed, err := t.streamOnce(ctx)
		t.connected.Store(false)
		if ctx.Err() != nil {
			return
		}
		if err != nil {
			t.setErr(err)
			if errors.Is(err, ErrBootstrapRequired) {
				// Unhealable on a live store: stop hammering the primary;
				// surface the state and wait for an operator restart.
				backoff = t.maxBackoff
			}
		}
		if progressed {
			backoff = t.minBackoff
		}
		t.reconnects.Add(1)
		select {
		case <-ctx.Done():
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > t.maxBackoff {
			backoff = t.maxBackoff
		}
	}
}

// streamOnce opens one GET /v1/wal stream after the store's current LSN
// and applies batches until the stream ends. progressed reports whether
// any batch landed (backoff reset). A nil error is a clean end (server
// close or our own cancellation); errors are transport drops, tears,
// gaps, or the 410 bootstrap signal.
func (t *Tailer) streamOnce(ctx context.Context) (progressed bool, err error) {
	after := t.st.LSN()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		t.primary+"/v1/wal?after="+strconv.FormatUint(after, 10), nil)
	if err != nil {
		return false, err
	}
	resp, err := t.hc.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		return false, fmt.Errorf("%w (primary at %s)", ErrBootstrapRequired, t.primary)
	default:
		return false, fmt.Errorf("primary answered %s to the wal stream", resp.Status)
	}
	if h := resp.Header.Get(wire.LSNHeader); h != "" {
		if n, perr := strconv.ParseUint(h, 10, 64); perr == nil {
			t.observe(n)
		}
	}
	t.connected.Store(true)
	dec := wal.NewDecoder(resp.Body)
	for {
		b, err := dec.Next()
		if err != nil {
			if err == io.EOF || ctx.Err() != nil {
				return progressed, nil
			}
			return progressed, err // torn mid-frame: reconnect and resume
		}
		t.observe(b.LSN)
		if len(b.Ops) == 0 {
			continue // heartbeat: lag refreshed, nothing to apply
		}
		res, aerr := t.st.ApplyReplicated(b)
		if res.Applied {
			t.applied.Add(1)
			t.appliedOps.Add(uint64(res.Ops))
			progressed = true
		} else if aerr == nil {
			t.skipped.Add(1)
		}
		if aerr != nil {
			return progressed, aerr
		}
	}
}

// Bootstrap prepares a replica data directory before OpenStore: fetch
// the primary's latest snapshot and install it (trustmap.InstallSnapshot)
// unless the local state already covers it. Reports whether a snapshot
// was installed and its watermark. A primary with no checkpoint yet
// answers 204 and the replica simply starts from its local state (LSN 0
// when fresh) — the WAL stream covers the full history.
func Bootstrap(ctx context.Context, dir, primary string, hc *http.Client) (installed bool, lsn uint64, err error) {
	if hc == nil {
		hc = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, primary+"/v1/snapshot", nil)
	if err != nil {
		return false, 0, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return false, 0, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNoContent:
		return false, 0, nil
	default:
		return false, 0, fmt.Errorf("replica: primary answered %s to the snapshot fetch", resp.Status)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return false, 0, err
	}
	lsn, err = trustmap.InstallSnapshot(dir, blob)
	if errors.Is(err, trustmap.ErrSnapshotStale) {
		return false, 0, nil // local state is at or past the snapshot
	}
	if err != nil {
		return false, 0, err
	}
	return true, lsn, nil
}

// Salvage ships a dead primary's WAL tail straight from its data
// directory into st: every durable batch above st's position applies
// through the same ApplyReplicated path the live stream uses, then the
// result is fsynced. Returns the batch count landed. Run it before
// promoting when the old primary's disk is reachable — async shipping
// means the replica may be a few batches behind the last acked-durable
// write, and this closes that gap to zero. The primary process must be
// dead: its WAL is opened (healing any torn tail, exactly as its own
// recovery would) and read directly.
//
// If the directory's log no longer reaches back to st's position (the
// primary checkpointed and pruned past it), Salvage fails without
// applying a partial history; bootstrap a fresh replica from the
// snapshot instead.
func Salvage(primaryDir string, st *trustmap.Store) (int, error) {
	walDir := filepath.Join(primaryDir, "wal")
	log, err := wal.Open(walDir) // heals the torn tail of the crashed writer
	if err != nil {
		return 0, fmt.Errorf("replica: salvage open: %w", err)
	}
	upto := log.LastLSN()
	if err := log.Close(); err != nil {
		return 0, err
	}
	n := 0
	if err := wal.Tail(walDir, st.LSN(), upto, func(b wire.OpBatch) error {
		res, err := st.ApplyReplicated(b)
		if err != nil {
			return err
		}
		if res.Applied {
			n++
		}
		return nil
	}); err != nil {
		return n, fmt.Errorf("replica: salvage: %w", err)
	}
	if err := st.Sync(); err != nil {
		return n, err
	}
	return n, nil
}
