module trustmap

go 1.24
