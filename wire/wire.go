// Package wire pins the JSON schema of the trustd HTTP API: every
// request, response, and mutation-op shape the server accepts or emits,
// shared by cmd/trustd's handlers and the typed client package so the two
// can never drift. The types carry no behavior — they are the contract.
//
// Conventions:
//
//   - All keys are lowercase snake_case.
//   - Every successful response carries the epoch that served it: the
//     publication generation of the server's store. A mutation's response
//     epoch is a lower bound for every later read, so read-your-writes is
//     checkable client-side.
//   - Durable servers additionally carry the LSN (log sequence number) of
//     the last durably synced write-ahead-log batch; in-memory servers
//     omit it. A mutation's response LSN, once >= its own batch, proves
//     the write survives a crash.
//   - Errors are an ErrorResponse body with the HTTP status carrying the
//     class: 400 malformed or invalid request (including replication or
//     WAL-stream endpoints on servers that cannot serve them — in-memory
//     stores and sharded clusters), 404 unknown user or object, 405
//     wrong method, 410 WAL stream resumed behind a pruned checkpoint
//     (re-bootstrap from /v1/snapshot), 413 oversized batch or body
//     (Limit names the bound), 429 admission shed (queue full or
//     queue-wait deadline; Retry-After header says when to come back),
//     421 mutation sent to a read replica (Primary and the PrimaryHeader
//     header name where to redirect it), 503 server still recovering its
//     store from disk (retryable, Retry-After header) or request
//     deadline exceeded (no Retry-After — the client chose the budget).
//
// # Schema evolution
//
// SchemaVersion names the current wire schema generation. Decoders on
// both sides MUST tolerate unknown fields (the encoding/json default):
// new servers accept requests from old clients (absent fields zero), and
// old clients keep working against new servers (new response fields are
// ignored). Fields are only ever added, never renamed or repurposed.
package wire

import "fmt"

// SchemaVersion is the current wire schema generation: bumped when a
// field is added anywhere in the schema. Version 2 added durability: the
// OpBatch envelope, LSN on responses, object ops, and the durability
// section of /v1/stats. Version 3 added resilience: the admission
// section of /v1/stats, ErrorResponse.Limit on 413s, and the
// TimeoutHeader request deadline override. Version 4 added replication:
// Health.Role/ReplicaLag, the replication section of /v1/stats,
// PromoteResponse, ErrorResponse.Primary on 421s, and the
// PrimaryHeader/StalenessHeader/LSNHeader response headers. Version 5
// added sharded clusters: Health.Shards, the cluster section of
// /v1/stats (ClusterStats with per-shard epochs/LSNs and conserved op
// counters), the register-roots op (Op.Users), and the ShardOwner
// routing function clients use for shard-aware batching. Version 6
// added the query layer: the Query pattern AST and QueryResponse of
// POST /v1/query, and the query section of /v1/stats (QueryTotals).
const SchemaVersion = 6

// TimeoutHeader is the request header a client sets to override the
// server's default per-request deadline, in integer milliseconds. The
// server caps it at its configured maximum; 0 or absent means the server
// default applies.
const TimeoutHeader = "X-Trustd-Timeout-Ms"

// PrimaryHeader is the response header a replica sets on the 421 it
// answers to mutations (and on PromoteResponse-adjacent errors): the base
// URL of the primary the client should redirect the write to.
const PrimaryHeader = "X-Trustd-Primary"

// StalenessHeader is the response header a replica sets on every
// response: its replication lag as a count of primary-durable WAL batches
// not yet applied locally, measured against the primary's durable LSN as
// of the replica's last stream contact. Absent on a primary.
const StalenessHeader = "X-Trustd-Staleness"

// LSNHeader carries a durable log sequence number on non-JSON endpoints:
// the primary's durable LSN on GET /v1/wal (at stream start) and the
// snapshot's watermark LSN on GET /v1/snapshot.
const LSNHeader = "X-Trustd-LSN"

// UserResult is one user's resolution for one object: the possible values
// over all stable solutions, and the certain value when exactly one.
type UserResult struct {
	Possible []string `json:"possible"`
	Certain  string   `json:"certain,omitempty"`
}

// Health is the GET /healthz response.
type Health struct {
	OK    bool   `json:"ok"`
	Epoch uint64 `json:"epoch"`
	// LSN is the durable log sequence number; zero/omitted on in-memory
	// servers.
	LSN uint64 `json:"lsn,omitempty"`
	// Role is "primary" or "replica"; empty on servers predating schema 4.
	Role string `json:"role,omitempty"`
	// ReplicaLag is the replica's replication lag in WAL batches (see
	// StalenessHeader); always zero/omitted on a primary.
	ReplicaLag uint64 `json:"replica_lag,omitempty"`
	// Shards is the cluster shard count: the topology advertisement a
	// shard-aware client needs to split batches with ShardOwner.
	// Zero/omitted on unsharded servers (and those predating schema 5).
	Shards int `json:"shards,omitempty"`
}

// ResolveRequest is the POST /v1/resolve body: one ad-hoc object's
// resolution. Beliefs overrides the network-level defaults per root;
// Users lists the users to report (at least one).
type ResolveRequest struct {
	Beliefs map[string]string `json:"beliefs,omitempty"`
	Users   []string          `json:"users"`
}

// ResolveResponse answers ResolveRequest.
type ResolveResponse struct {
	Epoch uint64                `json:"epoch"`
	LSN   uint64                `json:"lsn,omitempty"`
	Users map[string]UserResult `json:"users"`
}

// BulkResolveRequest is the POST /v1/bulk-resolve body: many ad-hoc
// objects at once.
type BulkResolveRequest struct {
	Objects map[string]map[string]string `json:"objects"`
	Users   []string                     `json:"users"`
}

// BulkResolveResponse answers BulkResolveRequest.
type BulkResolveResponse struct {
	Epoch   uint64                           `json:"epoch"`
	LSN     uint64                           `json:"lsn,omitempty"`
	Objects map[string]map[string]UserResult `json:"objects"`
}

// Mutation op kinds accepted in a MutateRequest.
const (
	// OpSetTrust upserts a trust mapping (add or re-prioritize).
	OpSetTrust = "set-trust"
	// OpAddTrust adds a trust mapping, failing if it exists.
	OpAddTrust = "add-trust"
	// OpUpdateTrust re-prioritizes a mapping, failing if it is absent.
	OpUpdateTrust = "update-trust"
	// OpRemoveTrust revokes a mapping, failing if it is absent.
	OpRemoveTrust = "remove-trust"
	// OpSetBelief states a user's network-level default belief.
	OpSetBelief = "set-belief"
	// OpRemoveBelief revokes a user's network-level default belief.
	OpRemoveBelief = "remove-belief"
)

// Object op kinds. These appear in the durable store's write-ahead log
// (every mutation is one wire.Op); over HTTP the object endpoints carry
// them instead of /v1/mutate, which stays a trust-network batch.
const (
	// OpPutObject creates or replaces one object's explicit beliefs
	// wholesale (Object, Beliefs).
	OpPutObject = "put-object"
	// OpDeleteObject removes one object and its beliefs (Object).
	OpDeleteObject = "delete-object"
	// OpPutBelief states one user's explicit belief about one object
	// (Object, User, Value).
	OpPutBelief = "put-belief"
	// OpDeleteBelief revokes one user's explicit belief about one object
	// (Object, User).
	OpDeleteBelief = "delete-belief"
)

// OpRegisterRoots declares users whose beliefs vary per object (Users)
// without storing an object that mentions them: the durable form of
// trustmap.Store.AddRoots. A cluster router broadcasts it to every shard
// so the shared spine — trust network, defaults, AND root set — stays
// identical across shards while objects partition. It appears in the
// write-ahead log and is applied on recovery replay; like the object ops
// it is not valid in a /v1/mutate batch.
const OpRegisterRoots = "register-roots"

// Op is one mutation: an element of a POST /v1/mutate batch, and the
// single serializable mutation format of the durable store's write-ahead
// log. Trust ops use Truster, Trusted, and (except removal) Priority;
// network belief ops use User and (for set-belief) Value; object ops use
// Object plus User/Value (per-object beliefs) or Beliefs (wholesale
// put); register-roots uses Users.
type Op struct {
	Op       string            `json:"op"`
	Truster  string            `json:"truster,omitempty"`
	Trusted  string            `json:"trusted,omitempty"`
	Priority int               `json:"priority,omitempty"`
	User     string            `json:"user,omitempty"`
	Value    string            `json:"value,omitempty"`
	Object   string            `json:"object,omitempty"`
	Beliefs  map[string]string `json:"beliefs,omitempty"`
	// Users carries the root names of a register-roots op.
	Users []string `json:"users,omitempty"`
}

// OpBatch is the envelope of one write-ahead-log record: an ordered op
// batch applied atomically, stamped with the schema generation that wrote
// it, the store epoch current when it was logged, and its log sequence
// number (contiguous from 1; the recovery watermark). Decoders tolerate
// unknown fields, so newer writers stay readable by older readers.
type OpBatch struct {
	Schema int    `json:"schema"`
	Epoch  uint64 `json:"epoch"`
	LSN    uint64 `json:"lsn"`
	Ops    []Op   `json:"ops"`
}

// MutateRequest is the POST /v1/mutate body: an ordered op batch applied
// atomically with respect to concurrent readers (one epoch publication).
type MutateRequest struct {
	Ops []Op `json:"ops"`
}

// MutateResponse answers MutateRequest. Applied counts the ops that
// landed; on an error response it appears in ErrorResponse instead.
type MutateResponse struct {
	Epoch   uint64 `json:"epoch"`
	LSN     uint64 `json:"lsn,omitempty"`
	Applied int    `json:"applied"`
}

// ObjectPutRequest is the PUT /v1/objects/{key} body: the object's
// explicit beliefs, replacing any previous ones wholesale. An empty map
// is valid (the object resolves purely from network defaults).
type ObjectPutRequest struct {
	Beliefs map[string]string `json:"beliefs"`
}

// BeliefPutRequest is the PUT /v1/objects/{key}/beliefs/{user} body.
type BeliefPutRequest struct {
	Value string `json:"value"`
}

// ObjectResponse describes one stored object: its explicit beliefs and
// the epoch current when it was read or written.
type ObjectResponse struct {
	Object  string            `json:"object"`
	Beliefs map[string]string `json:"beliefs"`
	Epoch   uint64            `json:"epoch"`
	LSN     uint64            `json:"lsn,omitempty"`
}

// ObjectListResponse is the GET /v1/objects response: stored object keys,
// sorted.
type ObjectListResponse struct {
	Objects []string `json:"objects"`
	Epoch   uint64   `json:"epoch"`
	LSN     uint64   `json:"lsn,omitempty"`
}

// ObjectResolutionResponse is the GET /v1/objects/{key}/resolution
// response: the stored object resolved against the current epoch for the
// requested users.
type ObjectResolutionResponse struct {
	Object string                `json:"object"`
	Epoch  uint64                `json:"epoch"`
	LSN    uint64                `json:"lsn,omitempty"`
	Users  map[string]UserResult `json:"users"`
}

// Predicate comparison operators accepted in Predicate.Op.
const (
	// PredEq keeps rows whose column equals the operand.
	PredEq = "eq"
	// PredNe keeps rows whose column differs from the operand.
	PredNe = "ne"
	// PredLt keeps rows whose column orders before the operand.
	PredLt = "lt"
	// PredLe keeps rows whose column orders before or equals the operand.
	PredLe = "le"
	// PredGt keeps rows whose column orders after the operand.
	PredGt = "gt"
	// PredGe keeps rows whose column orders after or equals the operand.
	PredGe = "ge"
	// PredIn keeps rows whose column equals any element of Values.
	PredIn = "in"
	// PredPrefix keeps rows whose string column starts with the operand.
	PredPrefix = "prefix"
	// PredContains keeps rows whose string-list column contains the
	// operand (the only operator valid on the "possible" column).
	PredContains = "contains"
)

// Aggregate functions accepted in Aggregate.Fn.
const (
	// AggCount counts the rows of the group (no input column).
	AggCount = "count"
	// AggSum sums a numeric (or boolean, as 0/1) column.
	AggSum = "sum"
	// AggAvg averages a numeric (or boolean, as 0/1) column. Decomposes
	// as a (sum, count) pair, so cluster partials merge exactly.
	AggAvg = "avg"
	// AggMin takes the minimum of a numeric or string column.
	AggMin = "min"
	// AggMax takes the maximum of a numeric or string column.
	AggMax = "max"
	// AggRate is the fraction of rows whose boolean column is true —
	// the paper's acceptance rate. Decomposes like AggAvg.
	AggRate = "rate"
)

// Predicate is one comparison in a Query's where/having lists: Col Op
// operand. The operand is Value (scalar: JSON string, bool, or number),
// Values (for "in"), or ColB (compare against another column of the same
// row — e.g. certain vs r_certain across a join). Exactly one of the
// three operand forms may be set, except "eq"/"ne" on boolean columns
// where an absent operand means true.
type Predicate struct {
	Col    string `json:"col"`
	Op     string `json:"op"`
	Value  any    `json:"value,omitempty"`
	Values []any  `json:"values,omitempty"`
	// ColB names a second column to compare against instead of a literal
	// operand (scalar columns only).
	ColB string `json:"col_b,omitempty"`
}

// Aggregate is one aggregate output of a grouped Query: Fn over input
// column Of (omitted for count), emitted as output column As (defaulted
// to "fn" or "fn_of").
type Aggregate struct {
	Fn string `json:"fn"`
	Of string `json:"of,omitempty"`
	As string `json:"as,omitempty"`
}

// OrderKey is one sort key of a Query's order_by list: an output column,
// ascending unless Desc.
type OrderKey struct {
	Col  string `json:"col"`
	Desc bool   `json:"desc,omitempty"`
}

// Join is a Query's optional self-join clause over the resolutions
// relation: rows pair when every On column matches. On must include
// "object" — joins are per-object (comparing users' views of the same
// object), which keeps execution streaming over the key-ordered scan and
// shard-local on a cluster. Where filters the right side before pairing;
// right-side columns appear in the joined row under an "r_" prefix
// (r_user, r_certain, ...).
type Join struct {
	On    []string    `json:"on"`
	Where []Predicate `json:"where,omitempty"`
}

// Query is the POST /v1/query body (wire schema 6): a small pattern AST
// over the "resolutions" relation — one row per (stored object,
// reporting user) at a pinned epoch, with columns
//
//	object, user            row identity
//	certain                 the user's resolved value ("" when not certain)
//	possible                the user's possible values, sorted
//	possible_count          len(possible)
//	has_certain             certain != ""
//	belief                  the user's explicit stated belief ("" when none)
//	has_belief              whether the user stated a belief
//	agrees                  has_belief && has_certain && belief == certain
//	disagrees               has_belief && has_certain && belief != certain
//	conflicted              possible_count > 1
//
// Where filters rows; Join optionally self-joins per object; GroupBy +
// Aggs aggregate (Having filters groups); Select projects output
// columns; OrderBy sorts; Limit caps the row count. The server's greedy
// planner may evaluate predicates in any order — predicates must
// therefore be pure column comparisons, which the AST enforces by
// construction.
type Query struct {
	Where   []Predicate `json:"where,omitempty"`
	Join    *Join       `json:"join,omitempty"`
	GroupBy []string    `json:"group_by,omitempty"`
	Aggs    []Aggregate `json:"aggs,omitempty"`
	Having  []Predicate `json:"having,omitempty"`
	Select  []string    `json:"select,omitempty"`
	OrderBy []OrderKey  `json:"order_by,omitempty"`
	Limit   int         `json:"limit,omitempty"`
}

// QueryStats describes how one query executed: the per-response section
// of QueryResponse, and the per-request increments behind QueryTotals.
type QueryStats struct {
	// RowsScanned counts (object, user) rows generated from the pinned
	// resolution stream before filtering.
	RowsScanned uint64 `json:"rows_scanned"`
	// RowsEmitted counts output rows before any response-size truncation.
	RowsEmitted uint64 `json:"rows_emitted"`
	// Groups counts distinct groups of a grouped query.
	Groups int `json:"groups,omitempty"`
	// KeyLookups counts objects answered by point resolution instead of a
	// scan: the planner extracted an object key-equality pushdown.
	KeyLookups int `json:"key_lookups,omitempty"`
	// PredicatesReordered counts where-predicates the greedy planner
	// hoisted ahead of a predicate written before them.
	PredicatesReordered int `json:"predicates_reordered,omitempty"`
	// EarlyTerminated reports that execution stopped before exhausting
	// its input: an empty key pushdown, or a satisfied limit.
	EarlyTerminated bool `json:"early_terminated,omitempty"`
	// ShardPartials counts per-shard partial aggregations merged into the
	// result on a cluster; zero on single stores and non-aggregate plans.
	ShardPartials int `json:"shard_partials,omitempty"`
}

// QueryResponse answers POST /v1/query: the output columns, the rows in
// deterministic order (explicit order_by, else object/user scan order,
// else group-key order), and how the query ran. Values are JSON strings,
// booleans, numbers, or string arrays, positionally matching Columns.
type QueryResponse struct {
	Epoch uint64 `json:"epoch"`
	LSN   uint64 `json:"lsn,omitempty"`
	// Columns names the output columns, in row order.
	Columns []string `json:"columns"`
	// Rows is the result set; each row is positionally aligned with
	// Columns.
	Rows [][]any `json:"rows"`
	// Truncated reports that the server capped Rows at its batch limit;
	// Stats.RowsEmitted still counts the full result.
	Truncated bool       `json:"truncated,omitempty"`
	Stats     QueryStats `json:"stats"`
}

// QueryTotals is the query section of /v1/stats: cumulative counters
// over every /v1/query served since process start.
type QueryTotals struct {
	Queries             uint64 `json:"queries"`
	RowsScanned         uint64 `json:"rows_scanned"`
	RowsEmitted         uint64 `json:"rows_emitted"`
	PredicatesReordered uint64 `json:"predicates_reordered"`
	EarlyTerminations   uint64 `json:"early_terminations"`
}

// SessionStats mirrors the store's maintenance counters on the wire.
type SessionStats struct {
	Compiles           int    `json:"compiles"`
	IncrementalApplies int    `json:"incremental_applies"`
	ValueOnlyUpdates   int    `json:"value_only_updates"`
	FullRecompiles     int    `json:"full_recompiles"`
	EpochsReclaimed    uint64 `json:"epochs_reclaimed"`
}

// EngineStats mirrors the compiled artifact's summary on the wire.
type EngineStats struct {
	Users            int `json:"users"`
	Mappings         int `json:"mappings"`
	Roots            int `json:"roots"`
	Reachable        int `json:"reachable"`
	SCCs             int `json:"sccs"`
	NontrivialSCCs   int `json:"nontrivial_sccs"`
	CopySteps        int `json:"copy_steps"`
	FloodSteps       int `json:"flood_steps"`
	DistinctSupports int `json:"distinct_supports"`
}

// StoreStats mirrors the store's object-table counters on the wire.
type StoreStats struct {
	Objects     int    `json:"objects"`
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
}

// DurabilityStats mirrors the store's persistence counters on the wire.
// Mode is "memory" for a purely in-memory store (every other field zero),
// otherwise "off", "batch", or "always" naming the fsync discipline.
type DurabilityStats struct {
	Mode             string `json:"mode"`
	LastLSN          uint64 `json:"last_lsn,omitempty"`
	DurableLSN       uint64 `json:"durable_lsn,omitempty"`
	SnapshotLSN      uint64 `json:"snapshot_lsn,omitempty"`
	WALAppends       uint64 `json:"wal_appends,omitempty"`
	WALSyncs         uint64 `json:"wal_syncs,omitempty"`
	WALBytes         uint64 `json:"wal_bytes,omitempty"`
	Checkpoints      uint64 `json:"checkpoints,omitempty"`
	RecoveredBatches uint64 `json:"recovered_batches,omitempty"`
	ReplayedOps      uint64 `json:"replayed_ops,omitempty"`
	ReplayErrors     uint64 `json:"replay_errors,omitempty"`
	DiscardedBytes   uint64 `json:"discarded_bytes,omitempty"`
}

// AdmissionClassStats mirrors one admission gate's deterministic
// counters on the wire (see internal/admission). Conservation holds:
// admitted + shed + canceled accounts for every request that reached the
// gate.
type AdmissionClassStats struct {
	Admitted      uint64 `json:"admitted"`
	Queued        uint64 `json:"queued,omitempty"`
	Shed          uint64 `json:"shed,omitempty"`
	Canceled      uint64 `json:"canceled,omitempty"`
	MaxQueueDepth int    `json:"max_queue_depth,omitempty"`
	InFlight      int    `json:"in_flight,omitempty"`
	QueueDepth    int    `json:"queue_depth,omitempty"`
}

// AdmissionStats is the admission section of /v1/stats: one counter set
// per request class, plus the deadline-rejection count. Enabled is false
// when the server runs ungated (every request admitted, nothing counted).
type AdmissionStats struct {
	Enabled   bool                `json:"enabled"`
	Reads     AdmissionClassStats `json:"reads"`
	Mutations AdmissionClassStats `json:"mutations"`
	// DeadlineExceeded counts requests answered 503 because their
	// propagated context deadline expired mid-request (distinct from shed:
	// these were admitted and started).
	DeadlineExceeded uint64 `json:"deadline_exceeded,omitempty"`
}

// ReplicationStats is the replication section of /v1/stats. A primary
// reports only Role; a replica reports the tail of its primary's WAL:
// the highest primary-durable LSN it has observed, the apply counters,
// and the lag between the two.
type ReplicationStats struct {
	Role    string `json:"role"`
	Primary string `json:"primary,omitempty"`
	// Connected reports whether the WAL stream to the primary is live.
	Connected bool `json:"connected,omitempty"`
	// LastSeenLSN is the highest primary durable LSN observed on the
	// stream (batches and heartbeats both advance it).
	LastSeenLSN uint64 `json:"last_seen_lsn,omitempty"`
	// Lag = LastSeenLSN - locally applied LSN (floor zero): the batch
	// count behind the primary as of last contact.
	Lag            uint64 `json:"lag,omitempty"`
	AppliedBatches uint64 `json:"applied_batches,omitempty"`
	AppliedOps     uint64 `json:"applied_ops,omitempty"`
	// SkippedBatches counts already-applied duplicates discarded on
	// reconnect overlap — expected, not an error.
	SkippedBatches uint64 `json:"skipped_batches,omitempty"`
	Reconnects     uint64 `json:"reconnects,omitempty"`
	LastError      string `json:"last_error,omitempty"`
}

// ShardStats is one shard's slice of a cluster's /v1/stats: its own
// epoch/LSN watermarks (shards publish and log independently) and the
// deterministic op counters the router conserved onto it.
type ShardStats struct {
	// Index is the shard's position in the routing table: ShardOwner(key,
	// Shards) == Index for every object the shard owns.
	Index int `json:"index"`
	// Objects is the shard's stored-object count.
	Objects int `json:"objects"`
	// Epoch is the shard's current publication generation. Epoch counters
	// are per shard and not comparable across shards.
	Epoch uint64 `json:"epoch"`
	// LSN / DurableLSN are the shard's own WAL watermarks; zero on
	// in-memory shards.
	LSN        uint64 `json:"lsn,omitempty"`
	DurableLSN uint64 `json:"durable_lsn,omitempty"`
	// ObjectOps counts the per-object mutations the router routed to this
	// shard. Conservation: the cluster's RoutedOps equals the sum of
	// ObjectOps over all shards.
	ObjectOps uint64 `json:"object_ops"`
	// CacheHits / CacheMisses are the shard's result-cache counters.
	CacheHits   uint64 `json:"cache_hits,omitempty"`
	CacheMisses uint64 `json:"cache_misses,omitempty"`
}

// ClusterStats is the cluster section of /v1/stats on a sharded server
// (trustd -cluster N): the routing table shape, the conserved router op
// counters, and one ShardStats per shard. Absent on unsharded servers.
type ClusterStats struct {
	// Shards is the shard count of the routing table.
	Shards int `json:"shards"`
	// Hash names the routing scheme; always ShardHash in this schema.
	Hash string `json:"hash"`
	// SpineOps counts trust-network mutation batches broadcast to every
	// shard (set-trust/remove-trust/set-default/... and register-roots):
	// each batch counts once, not once per shard.
	SpineOps uint64 `json:"spine_ops"`
	// RoutedOps counts per-object mutations routed to exactly one owning
	// shard. Conserved: equal to the sum of per-shard ObjectOps.
	RoutedOps uint64 `json:"routed_ops"`
	// ScatterReads counts scatter-gather reads (ResolveAll, Resolved
	// streams, stats, bulk-resolve splits) merged across shards.
	ScatterReads uint64 `json:"scatter_reads"`
	// PerShard is one entry per shard, in shard-index order.
	PerShard []ShardStats `json:"per_shard"`
}

// StatsResponse is the GET /v1/stats response: session, store, engine,
// durability, admission, replication, query, and (sharded servers)
// cluster counters of one pinned epoch — on a cluster, of one pinned epoch per
// shard, with the top-level Epoch/LSN the minimum over shards.
type StatsResponse struct {
	Schema      int              `json:"schema,omitempty"`
	Epoch       uint64           `json:"epoch"`
	LSN         uint64           `json:"lsn,omitempty"`
	Session     SessionStats     `json:"session"`
	Store       StoreStats       `json:"store"`
	Engine      EngineStats      `json:"engine"`
	Durability  DurabilityStats  `json:"durability"`
	Admission   AdmissionStats   `json:"admission"`
	Replication ReplicationStats `json:"replication"`
	// Query is the cumulative /v1/query activity (wire schema 6).
	Query QueryTotals `json:"query"`
	// Cluster is present only on sharded servers (wire schema 5).
	Cluster *ClusterStats `json:"cluster,omitempty"`
}

// CheckpointResponse answers POST /v1/admin/checkpoint: the compacted
// snapshot's watermark. Every WAL batch with LSN <= the response LSN is
// folded into the snapshot; the log was rotated behind it.
type CheckpointResponse struct {
	Epoch    uint64 `json:"epoch"`
	LSN      uint64 `json:"lsn"`
	Snapshot string `json:"snapshot"` // snapshot file name inside the data dir
}

// PromoteResponse answers POST /v1/admin/promote: the server's role
// after the call. Promote is idempotent — promoting a primary answers
// 200 with WasReplica false. Promoting a replica stops its WAL tail at
// the reported LSN; any primary-durable batches beyond it must be
// salvaged from the old primary's WAL before the promote (see the
// replication runbook) or they are lost.
type PromoteResponse struct {
	Role string `json:"role"`
	// WasReplica reports whether this call actually changed the role.
	WasReplica bool   `json:"was_replica"`
	Epoch      uint64 `json:"epoch"`
	LSN        uint64 `json:"lsn,omitempty"`
}

// DeleteResponse answers DELETE /v1/objects/{key}: the deleted key and
// the current epoch (deliberately not the remaining key list, which can
// be huge — GET /v1/objects lists keys).
type DeleteResponse struct {
	Deleted string `json:"deleted"`
	Epoch   uint64 `json:"epoch"`
	LSN     uint64 `json:"lsn,omitempty"`
}

// ErrorResponse is the body of every non-2xx response. Applied and Epoch
// are set on failed mutate batches: ops before the failing one were
// applied and published. Limit is set on 413s: the configured bound
// (batch ops or body bytes) the request exceeded, so a client can split
// its batch without guessing.
type ErrorResponse struct {
	Message string `json:"error"`
	Applied int    `json:"applied,omitempty"`
	Epoch   uint64 `json:"epoch,omitempty"`
	Limit   int    `json:"limit,omitempty"`
	// Primary is set on 421 Misdirected Request: the base URL of the
	// primary that accepts mutations (also in the PrimaryHeader header).
	Primary string `json:"primary,omitempty"`
}

// TxApplier is the mutation surface an Op batch applies to. It is
// satisfied by trustmap.StoreTx; keeping it as an interface here lets
// the one op-dispatch live next to the schema without the wire package
// depending on the library.
type TxApplier interface {
	SetTrust(truster, trusted string, priority int) error
	AddTrust(truster, trusted string, priority int) error
	UpdateTrust(truster, trusted string, priority int) (bool, error)
	RemoveTrust(truster, trusted string) (bool, error)
	SetDefault(user, value string) error
	DeleteDefault(user string) error
}

// Apply dispatches one op onto tx with the documented strictness:
// add-trust fails on duplicates, update-trust and remove-trust fail on
// absent mappings, set-trust upserts.
func (op Op) Apply(tx TxApplier) error {
	switch op.Op {
	case OpSetTrust:
		return tx.SetTrust(op.Truster, op.Trusted, op.Priority)
	case OpAddTrust:
		return tx.AddTrust(op.Truster, op.Trusted, op.Priority)
	case OpRemoveTrust:
		ok, err := tx.RemoveTrust(op.Truster, op.Trusted)
		if err == nil && !ok {
			return fmt.Errorf("remove-trust: no mapping %s -> %s", op.Trusted, op.Truster)
		}
		return err
	case OpUpdateTrust:
		ok, err := tx.UpdateTrust(op.Truster, op.Trusted, op.Priority)
		if err == nil && !ok {
			return fmt.Errorf("update-trust: no mapping %s -> %s", op.Trusted, op.Truster)
		}
		return err
	case OpSetBelief:
		return tx.SetDefault(op.User, op.Value)
	case OpRemoveBelief:
		return tx.DeleteDefault(op.User)
	case OpPutObject, OpDeleteObject, OpPutBelief, OpDeleteBelief:
		// Object ops live in the WAL and the object endpoints; a mutate
		// batch is a trust-network transaction and cannot carry them.
		return fmt.Errorf("object op %q is not valid in a mutate batch; use the /v1/objects endpoints", op.Op)
	case OpRegisterRoots:
		// Like the object ops, register-roots lives in the WAL only: it is
		// written by the cluster router's spine broadcast (and replayed on
		// recovery), never submitted through /v1/mutate.
		return fmt.Errorf("op %q is not valid in a mutate batch", op.Op)
	default:
		return fmt.Errorf("unknown mutation op %q", op.Op)
	}
}

// ShardHash names the object-routing scheme of wire schema 5: FNV-1a
// 64-bit over the object key fed into Lamping–Veach jump consistent
// hashing. ClusterStats.Hash carries it so a client can refuse to do
// shard-aware batching against a router speaking a different scheme.
const ShardHash = "fnv1a64-jump"

// ShardOwner maps an object key onto one of shards buckets using the
// ShardHash scheme. It is the routing contract shared by the server-side
// router and shard-aware clients: both MUST agree, which is why it lives
// in wire rather than an internal package. shards <= 1 always returns 0.
//
// Jump consistent hashing (Lamping & Veach, "A Fast, Minimal Memory,
// Consistent Hash Algorithm") keeps the assignment stable under growth:
// going from N to N+1 shards moves only ~1/(N+1) of the keys. The
// implementation is the published algorithm verbatim — a linear
// congruential walk whose last jump inside [0, shards) is the bucket.
func ShardOwner(key string, shards int) int {
	if shards <= 1 {
		return 0
	}
	// Inlined FNV-1a 64 (hash/fnv forces an allocation via the hash.Hash
	// interface; routing sits on the per-op hot path).
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	// Jump consistent hash of h into [0, shards).
	var b int64 = -1
	j := int64(0)
	for j < int64(shards) {
		b = j
		h = h*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((h>>33)+1)))
	}
	return int(b)
}
