package wire

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// fakeTx records the dispatch of each op so TestOpApplyDispatch can assert
// Apply routes to the right TxApplier method with the right arguments.
type fakeTx struct {
	calls []string
	// present controls the bool return of UpdateTrust/RemoveTrust.
	present bool
}

func (f *fakeTx) SetTrust(truster, trusted string, priority int) error {
	f.calls = append(f.calls, "SetTrust")
	return nil
}
func (f *fakeTx) AddTrust(truster, trusted string, priority int) error {
	f.calls = append(f.calls, "AddTrust")
	return nil
}
func (f *fakeTx) UpdateTrust(truster, trusted string, priority int) (bool, error) {
	f.calls = append(f.calls, "UpdateTrust")
	return f.present, nil
}
func (f *fakeTx) RemoveTrust(truster, trusted string) (bool, error) {
	f.calls = append(f.calls, "RemoveTrust")
	return f.present, nil
}
func (f *fakeTx) SetDefault(user, value string) error {
	f.calls = append(f.calls, "SetDefault")
	return nil
}
func (f *fakeTx) DeleteDefault(user string) error {
	f.calls = append(f.calls, "DeleteDefault")
	return nil
}

func TestOpApplyDispatch(t *testing.T) {
	cases := []struct {
		op      Op
		present bool
		want    string // method name, or "" when an error is expected
		errSub  string
	}{
		{Op{Op: OpSetTrust, Truster: "a", Trusted: "b", Priority: 1}, true, "SetTrust", ""},
		{Op{Op: OpAddTrust, Truster: "a", Trusted: "b", Priority: 1}, true, "AddTrust", ""},
		{Op{Op: OpUpdateTrust, Truster: "a", Trusted: "b", Priority: 2}, true, "UpdateTrust", ""},
		{Op{Op: OpUpdateTrust, Truster: "a", Trusted: "b", Priority: 2}, false, "UpdateTrust", "no mapping"},
		{Op{Op: OpRemoveTrust, Truster: "a", Trusted: "b"}, true, "RemoveTrust", ""},
		{Op{Op: OpRemoveTrust, Truster: "a", Trusted: "b"}, false, "RemoveTrust", "no mapping"},
		{Op{Op: OpSetBelief, User: "a", Value: "x"}, true, "SetDefault", ""},
		{Op{Op: OpRemoveBelief, User: "a"}, true, "DeleteDefault", ""},
		{Op{Op: "bogus"}, true, "", "unknown mutation op"},
	}
	for _, tc := range cases {
		tx := &fakeTx{present: tc.present}
		err := tc.op.Apply(tx)
		if tc.errSub == "" {
			if err != nil {
				t.Errorf("Apply(%s): unexpected error %v", tc.op.Op, err)
			}
		} else if err == nil || !strings.Contains(err.Error(), tc.errSub) {
			t.Errorf("Apply(%s): error %v, want substring %q", tc.op.Op, err, tc.errSub)
		}
		if tc.want == "" {
			if len(tx.calls) != 0 {
				t.Errorf("Apply(%s): called %v, want no dispatch", tc.op.Op, tx.calls)
			}
		} else if len(tx.calls) != 1 || tx.calls[0] != tc.want {
			t.Errorf("Apply(%s): called %v, want [%s]", tc.op.Op, tx.calls, tc.want)
		}
	}
}

func TestOpApplyRejectsObjectOps(t *testing.T) {
	for _, kind := range []string{OpPutObject, OpDeleteObject, OpPutBelief, OpDeleteBelief} {
		tx := &fakeTx{}
		err := Op{Op: kind, Object: "o", User: "u", Value: "v"}.Apply(tx)
		if err == nil || !strings.Contains(err.Error(), "not valid in a mutate batch") {
			t.Errorf("Apply(%s): error %v, want object-op rejection", kind, err)
		}
		if len(tx.calls) != 0 {
			t.Errorf("Apply(%s): dispatched %v, want none", kind, tx.calls)
		}
	}
}

// TestUnknownFieldTolerance pins the schema-evolution contract: decoding a
// payload from a hypothetical future schema (extra fields everywhere) must
// succeed, preserving the fields this generation knows about.
func TestUnknownFieldTolerance(t *testing.T) {
	t.Run("OpBatch", func(t *testing.T) {
		blob := `{
			"schema": 99,
			"epoch": 7,
			"lsn": 42,
			"shard": "future-field",
			"ops": [
				{"op": "set-trust", "truster": "a", "trusted": "b", "priority": 1, "ttl": 30},
				{"op": "put-object", "object": "o1", "beliefs": {"a": "x"}, "vector_clock": [1, 2]}
			]
		}`
		var b OpBatch
		if err := json.Unmarshal([]byte(blob), &b); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if b.Schema != 99 || b.Epoch != 7 || b.LSN != 42 || len(b.Ops) != 2 {
			t.Fatalf("decoded %+v, want schema=99 epoch=7 lsn=42 2 ops", b)
		}
		if b.Ops[1].Op != OpPutObject || b.Ops[1].Beliefs["a"] != "x" {
			t.Fatalf("op[1] = %+v, want put-object with beliefs", b.Ops[1])
		}
	})
	t.Run("StatsResponse", func(t *testing.T) {
		blob := `{
			"schema": 2, "epoch": 3, "lsn": 10,
			"session": {"compiles": 1, "gpu_compiles": 9},
			"store": {"objects": 4},
			"engine": {"users": 2},
			"durability": {"mode": "batch", "durable_lsn": 9, "raft_term": 5},
			"replication": {"peers": 3}
		}`
		var s StatsResponse
		if err := json.Unmarshal([]byte(blob), &s); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if s.Epoch != 3 || s.LSN != 10 || s.Durability.Mode != "batch" || s.Durability.DurableLSN != 9 {
			t.Fatalf("decoded %+v, want epoch=3 lsn=10 durability batch/9", s)
		}
	})
	t.Run("responses", func(t *testing.T) {
		// One representative per response shape that old clients decode.
		for name, decode := range map[string]func([]byte) error{
			"Health": func(b []byte) error { var v Health; return json.Unmarshal(b, &v) },
			"ResolveResponse": func(b []byte) error {
				var v ResolveResponse
				return json.Unmarshal(b, &v)
			},
			"MutateResponse": func(b []byte) error {
				var v MutateResponse
				return json.Unmarshal(b, &v)
			},
			"CheckpointResponse": func(b []byte) error {
				var v CheckpointResponse
				return json.Unmarshal(b, &v)
			},
		} {
			if err := decode([]byte(`{"epoch": 1, "lsn": 2, "brand_new_field": {"x": 1}}`)); err != nil {
				t.Errorf("%s: decode with unknown field: %v", name, err)
			}
		}
	})
}

// TestOpBatchRoundTrip checks an op batch survives encode/decode intact,
// including object ops, and that omitempty keeps trust-op JSON minimal.
func TestOpBatchRoundTrip(t *testing.T) {
	in := OpBatch{
		Schema: SchemaVersion,
		Epoch:  5,
		LSN:    17,
		Ops: []Op{
			{Op: OpSetTrust, Truster: "alice", Trusted: "bob", Priority: 2},
			{Op: OpSetBelief, User: "carol", Value: "v1"},
			{Op: OpPutObject, Object: "o1", Beliefs: map[string]string{"alice": "x"}},
			{Op: OpPutBelief, Object: "o1", User: "bob", Value: "y"},
			{Op: OpDeleteBelief, Object: "o1", User: "bob"},
			{Op: OpDeleteObject, Object: "o1"},
		},
	}
	blob, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var out OpBatch
	if err := json.Unmarshal(blob, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out.Schema != in.Schema || out.Epoch != in.Epoch || out.LSN != in.LSN {
		t.Fatalf("envelope round-trip: got %+v", out)
	}
	if len(out.Ops) != len(in.Ops) {
		t.Fatalf("ops round-trip: got %d ops, want %d", len(out.Ops), len(in.Ops))
	}
	for i := range in.Ops {
		a, b := in.Ops[i], out.Ops[i]
		if a.Op != b.Op || a.Truster != b.Truster || a.Trusted != b.Trusted ||
			a.Priority != b.Priority || a.User != b.User || a.Value != b.Value ||
			a.Object != b.Object || len(a.Beliefs) != len(b.Beliefs) {
			t.Errorf("op %d round-trip: %+v != %+v", i, a, b)
		}
	}
	// A pure trust op must not leak object-op keys into its JSON.
	trustOnly, _ := json.Marshal(Op{Op: OpSetTrust, Truster: "a", Trusted: "b", Priority: 1})
	for _, key := range []string{"object", "beliefs", "user", "value"} {
		if strings.Contains(string(trustOnly), `"`+key+`"`) {
			t.Errorf("trust-op JSON %s leaks key %q", trustOnly, key)
		}
	}
}

// TestShardOwner pins the routing function's contract: determinism,
// range, the single-shard fast path, and — because clients and servers
// route independently — stability of concrete placements. The golden
// placements below are part of the wire format: changing them re-homes
// every stored object, which trustd's topology marker forbids.
func TestShardOwner(t *testing.T) {
	keys := []string{"", "a", "obj001", "obj002", "w3-obj117", "the-same-key"}
	for _, key := range keys {
		for _, shards := range []int{0, 1} {
			if got := ShardOwner(key, shards); got != 0 {
				t.Errorf("ShardOwner(%q, %d) = %d, want 0 (unsharded fast path)", key, shards, got)
			}
		}
		for _, shards := range []int{2, 3, 4, 16, 1024} {
			got := ShardOwner(key, shards)
			if got < 0 || got >= shards {
				t.Fatalf("ShardOwner(%q, %d) = %d, out of range", key, shards, got)
			}
			if again := ShardOwner(key, shards); again != got {
				t.Fatalf("ShardOwner(%q, %d) nondeterministic: %d then %d", key, shards, got, again)
			}
		}
	}

	// Golden placements: fail loudly if the hash ever changes.
	golden := map[string]int{"obj001": 2, "obj002": 1, "alpha": 0, "w0-obj000": 0}
	for key, want := range golden {
		if got := ShardOwner(key, 4); got != want {
			t.Errorf("ShardOwner(%q, 4) = %d, want pinned %d (changing %s re-homes stored objects)",
				key, got, want, ShardHash)
		}
	}

	// Jump consistent hashing's defining property: growing the table
	// only ever moves keys to the NEW shard — no churn among survivors.
	for _, key := range keys {
		for shards := 2; shards < 32; shards++ {
			before, after := ShardOwner(key, shards), ShardOwner(key, shards+1)
			if before != after && after != shards {
				t.Fatalf("ShardOwner(%q): %d shards -> %d, %d shards -> %d: moved to an old shard",
					key, shards, before, shards+1, after)
			}
		}
	}

	// Balance sanity: over many keys, no shard of 4 is starved or holds
	// a majority. Loose bounds — this is a smoke test, not a chi-square.
	counts := make([]int, 4)
	const n = 4000
	for i := 0; i < n; i++ {
		counts[ShardOwner(fmt.Sprintf("key-%05d", i), 4)]++
	}
	for s, c := range counts {
		if c < n/8 || c > n/2 {
			t.Errorf("shard %d holds %d of %d keys: unbalanced %v", s, c, n, counts)
		}
	}
}
