GO ?= go

# Benchmark families tracked in the committed trajectory (bench/BENCH_*).
BENCH_PATTERN ?= BenchmarkIncrementalUpdate|BenchmarkResolveAllocs|BenchmarkSessionMutateResolve
BENCH_COUNT ?= 5
BENCH_DIR ?= bench
FUZZTIME ?= 10s

.PHONY: all build test race bench bench-save bench-diff fuzz fmt vet ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Bench smoke: compile and run every benchmark exactly once so they can
# never bit-rot; full measurement runs drop -benchtime=1x.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Record a new benchmark baseline (text for benchstat, JSON for the
# BENCH_* trajectory). Commit the results.
bench-save:
	mkdir -p $(BENCH_DIR)
	$(GO) test -run=NONE -bench '$(BENCH_PATTERN)' -benchmem -count=$(BENCH_COUNT) . | tee $(BENCH_DIR)/BENCH_baseline.txt
	$(GO) run ./cmd/benchjson -in $(BENCH_DIR)/BENCH_baseline.txt -out $(BENCH_DIR)/BENCH_baseline.json

# Compare the working tree against the committed baseline. Uses benchstat
# when installed (go install golang.org/x/perf/cmd/benchstat@latest) and
# degrades to a raw diff otherwise.
bench-diff:
	mkdir -p $(BENCH_DIR)
	$(GO) test -run=NONE -bench '$(BENCH_PATTERN)' -benchmem -count=$(BENCH_COUNT) . > $(BENCH_DIR)/BENCH_current.txt
	$(GO) run ./cmd/benchjson -in $(BENCH_DIR)/BENCH_current.txt -out $(BENCH_DIR)/BENCH_current.json
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat $(BENCH_DIR)/BENCH_baseline.txt $(BENCH_DIR)/BENCH_current.txt; \
	else \
		echo "benchstat not installed (go install golang.org/x/perf/cmd/benchstat@latest); raw diff:"; \
		diff -u $(BENCH_DIR)/BENCH_baseline.txt $(BENCH_DIR)/BENCH_current.txt || true; \
	fi

# Short coverage-guided fuzz of the incremental-engine parity invariant.
fuzz:
	$(GO) test ./internal/engine -run=NONE -fuzz=FuzzEngineParity -fuzztime=$(FUZZTIME)

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: build fmt vet race bench fuzz
