GO ?= go

.PHONY: all build test race bench fmt vet ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Bench smoke: compile and run every benchmark exactly once so they can
# never bit-rot; full measurement runs drop -benchtime=1x.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: build fmt vet race bench
