GO ?= go

# Benchmark families tracked in the committed trajectory (bench/BENCH_*).
BENCH_PATTERN ?= BenchmarkBulkResolve|BenchmarkIncrementalUpdate|BenchmarkResolveAllocs|BenchmarkSessionMutateResolve|BenchmarkCompile|BenchmarkServeMixed|BenchmarkStoreResolve|BenchmarkWALAppend|BenchmarkRecovery|BenchmarkAdmission|BenchmarkClientRetry|BenchmarkClusterResolve|BenchmarkQuery
# Hot-path benchmarks the perf gate fails on; a regression beyond
# BENCH_GATE_THRESHOLD (current/baseline ns/op) exits non-zero.
BENCH_GATE_PATTERN ?= BenchmarkBulkResolve|BenchmarkIncrementalUpdate
BENCH_GATE_THRESHOLD ?= 1.15
BENCH_COUNT ?= 5
BENCH_DIR ?= bench
# When set (CI sets it to $GITHUB_STEP_SUMMARY), bench-gate appends its
# delta table to this file as markdown.
BENCH_SUMMARY ?=
FUZZTIME ?= 10s
# Advisory statement-coverage floor for internal/engine (make cover
# reports, never fails).
ENGINE_COVER_FLOOR ?= 75

# Packages whose exported API surface is goldened by make api.
API_PKGS ?= .,wire,client
API_GOLDEN ?= api/API.txt

.PHONY: all build test race bench bench-save bench-diff bench-gate cover smoke crash poison loadgen-smoke replica-smoke cluster-smoke fuzz fmt vet lint api api-save doc-gate ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Bench smoke: compile and run every benchmark exactly once so they can
# never bit-rot; full measurement runs drop -benchtime=1x.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Record a new benchmark baseline (text for benchstat, JSON for the
# BENCH_* trajectory). Commit the results.
bench-save:
	mkdir -p $(BENCH_DIR)
	$(GO) test -run=NONE -bench '$(BENCH_PATTERN)' -benchmem -count=$(BENCH_COUNT) . > $(BENCH_DIR)/BENCH_baseline.txt
	@cat $(BENCH_DIR)/BENCH_baseline.txt
	$(GO) run ./cmd/benchjson -in $(BENCH_DIR)/BENCH_baseline.txt -out $(BENCH_DIR)/BENCH_baseline.json

# Compare the working tree against the committed baseline. Uses benchstat
# when installed (go install golang.org/x/perf/cmd/benchstat@latest) and
# degrades to a raw diff otherwise.
bench-diff:
	mkdir -p $(BENCH_DIR)
	$(GO) test -run=NONE -bench '$(BENCH_PATTERN)' -benchmem -count=$(BENCH_COUNT) . > $(BENCH_DIR)/BENCH_current.txt
	$(GO) run ./cmd/benchjson -in $(BENCH_DIR)/BENCH_current.txt -out $(BENCH_DIR)/BENCH_current.json
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat $(BENCH_DIR)/BENCH_baseline.txt $(BENCH_DIR)/BENCH_current.txt; \
	else \
		echo "benchstat not installed (go install golang.org/x/perf/cmd/benchstat@latest); raw diff:"; \
		diff -u $(BENCH_DIR)/BENCH_baseline.txt $(BENCH_DIR)/BENCH_current.txt || true; \
	fi

# Perf gate: re-run the gated hot-path benchmarks and compare against the
# committed baseline with cmd/benchgate (exit 1 beyond the threshold).
# benchstat (go install golang.org/x/perf/cmd/benchstat@latest) adds the
# statistical report when installed but is not required. CI runs this as a
# non-blocking advisory step; run it locally before committing perf work.
bench-gate:
	mkdir -p $(BENCH_DIR)
	$(GO) test -run=NONE -bench '$(BENCH_GATE_PATTERN)' -benchmem -count=$(BENCH_COUNT) . > $(BENCH_DIR)/BENCH_gate.txt
	@cat $(BENCH_DIR)/BENCH_gate.txt
	$(GO) run ./cmd/benchjson -in $(BENCH_DIR)/BENCH_gate.txt -out $(BENCH_DIR)/BENCH_gate.json
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat $(BENCH_DIR)/BENCH_baseline.txt $(BENCH_DIR)/BENCH_gate.txt || true; \
	fi
	$(GO) run ./cmd/benchgate -baseline $(BENCH_DIR)/BENCH_baseline.json -current $(BENCH_DIR)/BENCH_gate.json \
		-pattern '$(BENCH_GATE_PATTERN)' -threshold $(BENCH_GATE_THRESHOLD) \
		$(if $(BENCH_SUMMARY),-summary '$(BENCH_SUMMARY)')

# Coverage across all packages, plus an advisory floor report for the
# engine (the hot core whose coverage should not silently erode). The
# floor never fails the build — the 1-CPU CI box is for honesty, not
# gatekeeping; the numbers land in the job log and the uploaded profile.
cover:
	$(GO) test -coverprofile=coverage.out -covermode=atomic ./...
	@$(GO) tool cover -func=coverage.out | tail -n 1
	@pct=$$(awk '$$1 ~ /^trustmap\/internal\/engine\// { total += $$2; if ($$3 > 0) covered += $$2 } \
		END { if (total > 0) printf "%.1f", 100 * covered / total; else print 0 }' coverage.out); \
	echo "internal/engine statement coverage: $$pct% (advisory floor: $(ENGINE_COVER_FLOOR)%)"; \
	awk -v p="$$pct" -v f="$(ENGINE_COVER_FLOOR)" 'BEGIN { if (p+0 < f+0) print "WARNING: internal/engine coverage " p "% is below the advisory floor of " f "%" }'

# trustd end-to-end smoke: start the HTTP server on a real listener,
# drive resolve -> mutate -> resolve, assert the second read observes the
# post-mutation epoch. Runs as its own CI step for a readable signal; the
# same test is part of the regular suite.
smoke:
	$(GO) test ./cmd/trustd -run TestSmokeHTTP -count=1 -v

# Durability acceptance: SIGKILL the deterministic write storm mid-flight
# (the child harness is built with -race inside the test) and require
# every acked LSN to survive recovery with oracle-identical resolved
# state. Runs as its own CI job; also part of `go test ./...`.
crash:
	$(GO) test ./cmd/crashharness -run TestCrashRecovery -count=1 -v

# Fault-injection acceptance: a WAL fsync failure mid-storm must poison
# the store (refusing later writes, still serving reads) and recover with
# oracle parity on restart — no SIGKILL involved.
poison:
	$(GO) test ./cmd/crashharness -run TestPoisonRecovery -count=1 -v

# Resilience acceptance: loadgen's package tests (overload sheds with
# bounded admitted p99, exact counter conservation), then an SLO-gated
# open-loop run of the real binary against the in-process stack —
# a healthy run must shed nothing, and an overload run must shed
# without collapsing admitted latency. Synthetic 10ms service time makes
# both outcomes reproducible on a 1-CPU box.
loadgen-smoke:
	$(GO) test ./cmd/loadgen -count=1 -v
	$(GO) run ./cmd/loadgen -self -rate 100 -duration 1s -read-limit 64 -read-queue 64 \
		-self-delay 10ms -slo-min-ops 50 -slo-max-shed-frac 0 \
		$(if $(BENCH_SUMMARY),-summary '$(BENCH_SUMMARY)')
	$(GO) run ./cmd/loadgen -self -rate 400 -duration 1s -read-limit 2 -read-queue 4 \
		-self-delay 10ms -mutate-frac 0 -queue-timeout 50ms \
		-slo-min-ops 200 -slo-min-shed-frac 0.05 -slo-max-queue-depth 4 -slo-max-p99 1s \
		$(if $(BENCH_SUMMARY),-summary '$(BENCH_SUMMARY)')

# Replication acceptance: the package test builds the harness with -race
# and asserts the full failover protocol line by line — contiguous acks,
# SIGKILL of the primary mid-storm, WAL-tail salvage closing the
# durability gap, promote at exactly the acked frontier, oracle parity,
# reads surviving the primary's death, and restart of the promoted
# store. Then a direct (non-race) drive run of the same scenario, with
# the markdown report forwarded to BENCH_SUMMARY when CI sets it.
replica-smoke:
	$(GO) test ./cmd/replicaharness -run TestReplicaFailover -count=1 -v
	dir=$$(mktemp -d) && $(GO) run ./cmd/replicaharness \
		-primary-dir $$dir/primary -replica-dir $$dir/replica \
		-seed 42 -max-ops 300 -kill-after 120 \
		$(if $(BENCH_SUMMARY),-summary '$(BENCH_SUMMARY)'); \
	st=$$?; rm -rf $$dir; exit $$st

# Sharding acceptance: the package test builds the cluster harness with
# -race and storms a 4-shard router with concurrent disjoint-keyspace
# workers — final state must match a single-store oracle row for row,
# with conserved op counters (RoutedOps == sum of per-shard ObjectOps)
# — then reopens a durable 3-shard cluster to prove per-shard WAL
# recovery reconstructs cluster-wide parity. The direct drive run
# repeats the in-memory storm without the race detector.
cluster-smoke:
	$(GO) test ./cmd/clusterharness -run TestCluster -count=1 -v
	$(GO) run ./cmd/clusterharness -shards 4 -workers 4 -ops 300 -seed 42

# Static analysis beyond go vet. staticcheck is not vendored; CI pins
# go install honnef.co/go/tools/cmd/staticcheck@2025.1.1 (a released
# version, so the rule set cannot drift under CI without a code change).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# API surface gate: diff the exported API (cmd/apidump over the public
# packages) against the committed golden. Any change — breaking or
# additive — fails until api-save regenerates the golden and the diff is
# reviewed alongside the code. CI runs this in the lint job.
api:
	@$(GO) run ./cmd/apidump -pkgs '$(API_PKGS)' | diff -u $(API_GOLDEN) - \
		|| { echo; echo "exported API surface changed: review the diff above and run 'make api-save'"; exit 1; }
	@echo "API surface matches $(API_GOLDEN)"

# Regenerate the committed API golden after an intentional surface change.
api-save:
	$(GO) run ./cmd/apidump -pkgs '$(API_PKGS)' -out $(API_GOLDEN)

# Documentation gate: every exported symbol in the module — public and
# internal packages alike — must carry a doc comment, and every package
# a package comment. CI runs this in the lint job; regressions fail.
doc-gate:
	$(GO) run ./cmd/apidump -check-docs -pkgs ./...
	@echo "doc gate: every exported symbol is documented"

# Short coverage-guided fuzz of the incremental-engine parity invariant
# and the query-plan parity invariant (greedy = naive = brute force).
fuzz:
	$(GO) test ./internal/engine -run=NONE -fuzz=FuzzEngineParity -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/query -run=NONE -fuzz=FuzzQueryPlanParity -fuzztime=$(FUZZTIME)

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: build fmt vet api doc-gate race crash bench fuzz
