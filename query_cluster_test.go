package trustmap_test

// Cluster-level query tests: a query over a 4-shard cluster must answer
// exactly what the same data answers on one store (rows via the merged
// stream, aggregates via scatter-gathered partials), and abandoning a
// query mid-merge — context cancellation included — must release every
// pinned shard epoch. Benchmarks hold the greedy planner to the naive
// one on selective workloads.

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"trustmap/internal/query"
	"trustmap/internal/shard"
	"trustmap/wire"
)

// putVaried stores n objects with a rotating belief mix — agreements,
// overrides, and conflicts — so query answers are non-trivial. The same
// call against two clusters produces identical logical content.
func putVaried(t testing.TB, rt *shard.Router, n int) {
	t.Helper()
	ctx := context.Background()
	mixes := []map[string]string{
		{"alice": "fish"},
		{"alice": "fish", "bob": "cow"},
		{"bob": "knot", "carol": "jar"},
		{"alice": "cow", "bob": "cow", "carol": "cow"},
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("obj%04d", i)
		if err := rt.PutObject(ctx, key, mixes[i%len(mixes)]); err != nil {
			t.Fatalf("put %s: %v", key, err)
		}
	}
}

// clusterQueries is the single-vs-cluster parity query list.
func clusterQueries() []wire.Query {
	return []wire.Query{
		// Row scan over the merged stream.
		{Where: []wire.Predicate{{Col: "disagrees", Op: wire.PredEq}}},
		// Key pushdown routed to one shard.
		{Where: []wire.Predicate{{Col: "object", Op: wire.PredEq, Value: "obj0007"}}},
		// Grouped aggregate: scatter-gathered partials, merged in global
		// key order.
		{
			GroupBy: []string{"object"},
			Aggs:    []wire.Aggregate{{Fn: wire.AggCount, As: "n"}, {Fn: wire.AggRate, Of: "disagrees", As: "dissent"}},
			Having:  []wire.Predicate{{Col: "dissent", Op: wire.PredGt, Value: 0}},
		},
		// Per-user acceptance rate across every shard's objects.
		{
			GroupBy: []string{"user"},
			Aggs:    []wire.Aggregate{{Fn: wire.AggRate, Of: "agrees", As: "acceptance"}, {Fn: wire.AggCount, As: "n"}},
			OrderBy: []wire.OrderKey{{Col: "acceptance", Desc: true}, {Col: "user"}},
		},
		// Global aggregate with min/max (exact partial merging).
		{Aggs: []wire.Aggregate{
			{Fn: wire.AggCount},
			{Fn: wire.AggSum, Of: "possible_count"},
			{Fn: wire.AggMin, Of: "certain"},
			{Fn: wire.AggMax, Of: "possible_count"},
		}},
		// Self-join over the merged stream.
		{
			Where: []wire.Predicate{
				{Col: "user", Op: wire.PredEq, Value: "alice"},
				{Col: "r_certain", Op: wire.PredNe, ColB: "certain"},
				{Col: "r_has_certain", Op: wire.PredEq},
			},
			Join: &wire.Join{On: []string{"object"}, Where: []wire.Predicate{{Col: "has_certain", Op: wire.PredEq}}},
		},
		// Order + limit over rows.
		{
			Select:  []string{"object", "user", "possible_count"},
			OrderBy: []wire.OrderKey{{Col: "possible_count", Desc: true}, {Col: "object"}, {Col: "user"}},
			Limit:   13,
		},
	}
}

// TestClusterQueryParity: identical data on one store and on a 4-shard
// cluster must answer every query identically — the scatter-gather
// decomposition and the merged-stream row path are both invisible.
func TestClusterQueryParity(t *testing.T) {
	single := newCluster(t, 1)
	cluster := newCluster(t, 4)
	putVaried(t, single, 40)
	putVaried(t, cluster, 40)
	ctx := context.Background()

	for i, q := range clusterQueries() {
		t.Run(fmt.Sprintf("q%02d", i), func(t *testing.T) {
			want, err := single.Query(ctx, q)
			if err != nil {
				t.Fatalf("single: %v", err)
			}
			got, err := cluster.Query(ctx, q)
			if err != nil {
				t.Fatalf("cluster: %v", err)
			}
			if !reflect.DeepEqual(got.Columns, want.Columns) {
				t.Fatalf("columns: cluster %v, single %v", got.Columns, want.Columns)
			}
			if len(got.Rows) != len(want.Rows) {
				t.Fatalf("rows: cluster %d, single %d", len(got.Rows), len(want.Rows))
			}
			for r := range got.Rows {
				if !reflect.DeepEqual(got.Rows[r], want.Rows[r]) {
					t.Fatalf("row %d: cluster %v, single %v", r, got.Rows[r], want.Rows[r])
				}
			}
			if len(q.Aggs) > 0 && got.Stats.ShardPartials != 4 {
				t.Fatalf("aggregate ran %d shard partials, want 4", got.Stats.ShardPartials)
			}
		})
	}
}

// reclaimState reads each shard's (epoch, reclaimed) counters at a
// quiescent point.
func reclaimState(rt *shard.Router) (epochs, reclaimed []uint64) {
	for i := 0; i < rt.Shards(); i++ {
		st := rt.Shard(i).Stats()
		epochs = append(epochs, st.Epoch)
		reclaimed = append(reclaimed, st.EpochsReclaimed)
	}
	return
}

// TestClusterQueryCancellationReleasesEpochs: abandoning the merged
// stream mid-flight — by context cancellation or by an early stop — must
// release every shard's pinned epoch. The check is exact: across a
// quiescent window each shard reclaims precisely as many epochs as it
// retires, so one leaked pin shows up as a reclaim deficit after the
// next mutation. Run under -race by make race.
func TestClusterQueryCancellationReleasesEpochs(t *testing.T) {
	rt := newCluster(t, 4)
	putVaried(t, rt, 240)
	beforeEpochs, beforeReclaimed := reclaimState(rt)

	// Cancel mid-merge while consuming the raw multi-shard stream: every
	// shard has pinned its epoch by the first row.
	ctx, cancel := context.WithCancel(context.Background())
	rows := 0
	for _, err := range rt.Resolved(ctx) {
		if err != nil {
			break
		}
		rows++
		if rows == 5 {
			cancel()
		}
	}
	cancel()
	if rows < 5 {
		t.Fatalf("stream ended after %d rows, before the cancellation point", rows)
	}

	// Cancel a full-scan row query mid-execution.
	qctx, qcancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := rt.Query(qctx, wire.Query{Where: []wire.Predicate{{Col: "has_belief", Op: wire.PredEq}}})
		done <- err
	}()
	time.Sleep(300 * time.Microsecond)
	qcancel()
	<-done // either outcome is legal; the pins must drain regardless

	// Cancel a scatter-gathered aggregate mid-partial.
	actx, acancel := context.WithCancel(context.Background())
	go func() {
		_, err := rt.Query(actx, wire.Query{
			GroupBy: []string{"user"},
			Aggs:    []wire.Aggregate{{Fn: wire.AggCount}},
		})
		done <- err
	}()
	time.Sleep(300 * time.Microsecond)
	acancel()
	<-done

	// An early-stopped limit query abandons the merge the same way.
	limited, err := rt.Query(context.Background(), wire.Query{Limit: 3})
	if err != nil {
		t.Fatalf("limit query: %v", err)
	}
	if len(limited.Rows) != 3 {
		t.Fatalf("limit query answered %d rows, want 3", len(limited.Rows))
	}

	// Retire the epochs every abandoned read pinned: one broadcast
	// publication per shard. With every pin released, each shard reclaims
	// exactly as many epochs as it retired; a leaked pin would leave a
	// deficit that never heals.
	if _, err := rt.Mutate([]wire.Op{{Op: wire.OpSetBelief, User: "carol", Value: "knot"}}); err != nil {
		t.Fatalf("mutate: %v", err)
	}
	afterEpochs, afterReclaimed := reclaimState(rt)
	for i := range afterEpochs {
		retired := afterEpochs[i] - beforeEpochs[i]
		reclaimed := afterReclaimed[i] - beforeReclaimed[i]
		if retired == 0 {
			t.Fatalf("shard %d: no publication between measurements", i)
		}
		if reclaimed != retired {
			t.Fatalf("shard %d: retired %d epochs but reclaimed %d — an abandoned query leaked a pin",
				i, retired, reclaimed)
		}
	}
}

// BenchmarkQuery: the greedy planner against the naive one on a
// selective pattern (key pushdown vs full scan — greedy must never be
// slower), a full-scan grouped aggregate where the plans coincide, and
// the 4-shard scatter-gather paths.
func BenchmarkQuery(b *testing.B) {
	selective := wire.Query{Where: []wire.Predicate{
		{Col: "possible_count", Op: wire.PredGe, Value: 1},
		{Col: "object", Op: wire.PredEq, Value: "obj0100"},
		{Col: "user", Op: wire.PredEq, Value: "dave"},
	}}
	fullscan := wire.Query{
		GroupBy: []string{"user"},
		Aggs:    []wire.Aggregate{{Fn: wire.AggCount, As: "n"}, {Fn: wire.AggRate, Of: "agrees", As: "acceptance"}},
	}
	const objects = 512
	ctx := context.Background()

	single := newCluster(b, 1)
	putVaried(b, single, objects)
	cluster := newCluster(b, 4)
	putVaried(b, cluster, objects)

	runPlan := func(b *testing.B, site query.Site, p *query.Plan, wantRows int) {
		b.Helper()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := query.Run(ctx, site, p)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != wantRows {
				b.Fatalf("answered %d rows, want %d", len(res.Rows), wantRows)
			}
		}
	}

	greedySel, err := query.Compile(selective)
	if err != nil {
		b.Fatal(err)
	}
	naiveSel, err := query.CompileNaive(selective)
	if err != nil {
		b.Fatal(err)
	}
	greedyFull, err := query.Compile(fullscan)
	if err != nil {
		b.Fatal(err)
	}
	naiveFull, err := query.CompileNaive(fullscan)
	if err != nil {
		b.Fatal(err)
	}
	users := len(single.Users())

	b.Run(fmt.Sprintf("selective/greedy/objects=%d", objects), func(b *testing.B) {
		runPlan(b, single.Shard(0), greedySel, 1)
	})
	b.Run(fmt.Sprintf("selective/naive/objects=%d", objects), func(b *testing.B) {
		runPlan(b, single.Shard(0), naiveSel, 1)
	})
	b.Run(fmt.Sprintf("fullscan/greedy/objects=%d", objects), func(b *testing.B) {
		runPlan(b, single.Shard(0), greedyFull, users)
	})
	b.Run(fmt.Sprintf("fullscan/naive/objects=%d", objects), func(b *testing.B) {
		runPlan(b, single.Shard(0), naiveFull, users)
	})
	b.Run(fmt.Sprintf("cluster4/selective/objects=%d", objects), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := cluster.Query(ctx, selective)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != 1 {
				b.Fatalf("answered %d rows, want 1", len(res.Rows))
			}
		}
	})
	b.Run(fmt.Sprintf("cluster4/aggregate/objects=%d", objects), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := cluster.Query(ctx, fullscan)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != users {
				b.Fatalf("answered %d groups, want %d", len(res.Rows), users)
			}
		}
	})
}
